//! DEFSI — Deep Learning Based Epidemic Forecasting with Synthetic
//! Information (paper ref \[19\], §II-A).
//!
//! The three-module pipeline:
//!
//! 1. **Model configuration** ([`estimate_tau_distribution`]): estimate a
//!    distribution over the epidemic model's transmissibility from coarse
//!    surveillance (EpiFast-style calibration gives the center; a spread
//!    reflects calibration uncertainty).
//! 2. **Synthetic training data** ([`generate_synthetic_seasons`]): run HPC
//!    simulations parameterized from that distribution, producing
//!    *high-resolution* (county-level) training data far beyond what
//!    surveillance offers.
//! 3. **Two-branch network** ([`TwoBranchNet`]): branch A encodes the
//!    within-season signal (a window of recent weekly state-level
//!    observations); branch B encodes seasonal context (week-of-season and
//!    cumulative burden); a head maps the concatenated codes to next-week
//!    *county-level* incidence.

use le_linalg::{Matrix, Rng};
use le_pool as pool;
use le_nn::optimizer::OptimizerState;
use le_nn::{Loss, Mlp, MlpConfig, Optimizer, Scaler};

use crate::epifast::EpiFast;
use crate::population::Population;
use crate::seir::{simulate, SeirConfig, SeirOutcome};
use crate::surveillance::Surveillance;
use crate::{NetError, Result};

/// Step 1: estimate a (mean, std) over transmissibility from observations.
pub fn estimate_tau_distribution(
    epifast: &EpiFast,
    pop: &Population,
    observed_weekly_state: &[f64],
    seed: u64,
) -> Result<(f64, f64)> {
    let (tau, _) = epifast.calibrate(pop, observed_weekly_state, seed)?;
    // Spread: one grid step on either side — calibration against noisy
    // weekly data cannot resolve finer than the grid.
    let grid_step = if epifast.tau_grid.len() > 1 {
        (epifast.tau_grid[epifast.tau_grid.len() - 1] - epifast.tau_grid[0])
            / (epifast.tau_grid.len() - 1) as f64
    } else {
        0.01
    };
    Ok((tau, grid_step))
}

/// One simulated season with its degraded observation.
#[derive(Debug, Clone)]
pub struct SyntheticSeason {
    /// Weekly state-level *observed* series (surveillance-degraded).
    pub observed_state: Vec<f64>,
    /// Weekly county-level *true* incidence (the training target).
    pub county_truth: Vec<Vec<f64>>,
}

/// Step 2: generate `n_seasons` synthetic seasons with transmissibilities
/// drawn from N(tau_mean, tau_std) clipped to (0, 0.5].
pub fn generate_synthetic_seasons(
    pop: &Population,
    base: &SeirConfig,
    surveillance: &Surveillance,
    tau_mean: f64,
    tau_std: f64,
    n_seasons: usize,
    seed: u64,
) -> Result<Vec<SyntheticSeason>> {
    if n_seasons == 0 {
        return Err(NetError::InvalidConfig("need at least one season".into()));
    }
    pool::par_map_index(n_seasons, |s| {
            let mut rng = Rng::new(seed.wrapping_add(s as u64).wrapping_mul(0x9E37_79B9));
            let tau = (tau_mean + tau_std * rng.gaussian()).clamp(0.005, 0.5);
            let cfg = SeirConfig {
                transmissibility: tau,
                ..*base
            };
            let outcome = simulate(pop, &cfg, rng.next_u64())?;
            // Surveillance with no delay for training data (we know the
            // whole synthetic season).
            let sv = Surveillance {
                delay_weeks: 0,
                ..*surveillance
            };
            Ok(SyntheticSeason {
                observed_state: sv.observe_state(&outcome, rng.next_u64()),
                county_truth: Surveillance::true_weekly_by_county(&outcome),
            })
    })
    .into_iter()
    .collect()
}

/// The two-branch architecture. Branch A sees the recent observation
/// window; branch B sees season context; the head fuses both.
#[derive(Debug, Clone)]
pub struct TwoBranchNet {
    branch_a: Mlp,
    branch_b: Mlp,
    head: Mlp,
    x_a_scaler: Scaler,
    x_b_scaler: Scaler,
    y_scaler: Scaler,
    /// Observation window length (branch-A input size).
    pub window: usize,
    /// Number of counties (output size).
    pub n_counties: usize,
}

/// Training hyperparameters for the two-branch net.
#[derive(Debug, Clone)]
pub struct DefsiTrainConfig {
    /// Observation window length (weeks).
    pub window: usize,
    /// Epochs over the synthetic dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Branch-A code width.
    pub code_a: usize,
    /// Branch-B code width.
    pub code_b: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DefsiTrainConfig {
    fn default() -> Self {
        Self {
            window: 4,
            epochs: 120,
            batch: 32,
            lr: 3e-3,
            code_a: 16,
            code_b: 8,
            seed: 0,
        }
    }
}

/// Assemble (branch-A, branch-B, target) training rows from seasons.
/// For every week `w ≥ window`, branch A gets `observed[w-window..w]`,
/// branch B gets `[w / total_weeks, cumulative_observed_so_far]`, and the
/// target is next-week county truth `county_truth[:][w]`.
fn build_rows(
    seasons: &[SyntheticSeason],
    window: usize,
    n_counties: usize,
) -> (Matrix, Matrix, Matrix) {
    let mut rows_a: Vec<Vec<f64>> = Vec::new();
    let mut rows_b: Vec<Vec<f64>> = Vec::new();
    let mut rows_y: Vec<Vec<f64>> = Vec::new();
    for season in seasons {
        let obs = &season.observed_state;
        let weeks = obs.len();
        for w in window..weeks {
            // Target: county truth at week w (the "next week" after the
            // window ending at w-1).
            let mut y = Vec::with_capacity(n_counties);
            let mut ok = true;
            for c in 0..n_counties {
                match season.county_truth.get(c).and_then(|s| s.get(w)) {
                    Some(&v) => y.push(v),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            rows_a.push(obs[w - window..w].to_vec());
            let cum: f64 = obs[..w].iter().sum();
            rows_b.push(vec![w as f64 / weeks.max(1) as f64, cum]);
            rows_y.push(y);
        }
    }
    let n = rows_a.len();
    let mut a = Matrix::zeros(n, window);
    let mut b = Matrix::zeros(n, 2);
    let mut y = Matrix::zeros(n, n_counties);
    for i in 0..n {
        a.row_mut(i).copy_from_slice(&rows_a[i]);
        b.row_mut(i).copy_from_slice(&rows_b[i]);
        y.row_mut(i).copy_from_slice(&rows_y[i]);
    }
    (a, b, y)
}

fn hstack(a: &Matrix, b: &Matrix) -> Matrix {
    debug_assert_eq!(a.rows(), b.rows());
    let mut out = Matrix::zeros(a.rows(), a.cols() + b.cols());
    for r in 0..a.rows() {
        out.row_mut(r)[..a.cols()].copy_from_slice(a.row(r));
        out.row_mut(r)[a.cols()..].copy_from_slice(b.row(r));
    }
    out
}

fn hsplit(m: &Matrix, left_cols: usize) -> (Matrix, Matrix) {
    let mut a = Matrix::zeros(m.rows(), left_cols);
    let mut b = Matrix::zeros(m.rows(), m.cols() - left_cols);
    for r in 0..m.rows() {
        a.row_mut(r).copy_from_slice(&m.row(r)[..left_cols]);
        b.row_mut(r).copy_from_slice(&m.row(r)[left_cols..]);
    }
    (a, b)
}

impl TwoBranchNet {
    /// Step 3: train the two-branch network on synthetic seasons.
    pub fn train(
        seasons: &[SyntheticSeason],
        n_counties: usize,
        cfg: &DefsiTrainConfig,
    ) -> Result<Self> {
        let (xa, xb, y) = build_rows(seasons, cfg.window, n_counties);
        if xa.rows() < 8 {
            return Err(NetError::InsufficientData(format!(
                "only {} training rows; need ≥ 8",
                xa.rows()
            )));
        }
        let x_a_scaler = Scaler::fit(&xa).map_err(|e| NetError::Internal(e.to_string()))?;
        let x_b_scaler = Scaler::fit(&xb).map_err(|e| NetError::Internal(e.to_string()))?;
        let y_scaler = Scaler::fit(&y).map_err(|e| NetError::Internal(e.to_string()))?;
        let xa_s = x_a_scaler.transform(&xa).map_err(|e| NetError::Internal(e.to_string()))?;
        let xb_s = x_b_scaler.transform(&xb).map_err(|e| NetError::Internal(e.to_string()))?;
        let y_s = y_scaler.transform(&y).map_err(|e| NetError::Internal(e.to_string()))?;

        let mut rng = Rng::new(cfg.seed);
        let mut branch_a = Mlp::new(
            MlpConfig::regression(&[cfg.window, 32, cfg.code_a]),
            &mut rng,
        )
        .map_err(|e| NetError::Internal(e.to_string()))?;
        let mut branch_b = Mlp::new(MlpConfig::regression(&[2, 16, cfg.code_b]), &mut rng)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        let mut head = Mlp::new(
            MlpConfig::regression(&[cfg.code_a + cfg.code_b, 32, n_counties]),
            &mut rng,
        )
        .map_err(|e| NetError::Internal(e.to_string()))?;

        let n_blocks = branch_a.n_param_blocks() + branch_b.n_param_blocks() + head.n_param_blocks();
        let mut opt = OptimizerState::new(Optimizer::adam(cfg.lr), n_blocks);
        let loss = Loss::Mse;
        let n = xa_s.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut drop_rng = rng.split();

        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(cfg.batch) {
                let a_batch = xa_s.gather_rows(chunk);
                let b_batch = xb_s.gather_rows(chunk);
                let y_batch = y_s.gather_rows(chunk);
                // Forward through both branches, concat, head.
                let code_a = branch_a
                    .forward_train(&a_batch, &mut drop_rng)
                    .map_err(|e| NetError::Internal(e.to_string()))?;
                let code_b = branch_b
                    .forward_train(&b_batch, &mut drop_rng)
                    .map_err(|e| NetError::Internal(e.to_string()))?;
                let fused = hstack(&code_a, &code_b);
                let pred = head
                    .forward_train(&fused, &mut drop_rng)
                    .map_err(|e| NetError::Internal(e.to_string()))?;
                let (_, grad) = loss
                    .evaluate(&pred, &y_batch)
                    .map_err(|e| NetError::Internal(e.to_string()))?;
                // Backward: head → split → branches.
                let grad_fused = head
                    .backward(&grad)
                    .map_err(|e| NetError::Internal(e.to_string()))?;
                let (grad_a, grad_b) = hsplit(&grad_fused, cfg.code_a);
                branch_a
                    .backward(&grad_a)
                    .map_err(|e| NetError::Internal(e.to_string()))?;
                branch_b
                    .backward(&grad_b)
                    .map_err(|e| NetError::Internal(e.to_string()))?;
                // One optimizer step across all three sub-networks.
                opt.begin_step();
                let mut block = 0;
                branch_a.for_each_param_block(|_, p, g| {
                    opt.update_slice(block, p, g);
                    block += 1;
                });
                branch_b.for_each_param_block(|_, p, g| {
                    opt.update_slice(block, p, g);
                    block += 1;
                });
                head.for_each_param_block(|_, p, g| {
                    opt.update_slice(block, p, g);
                    block += 1;
                });
            }
        }
        Ok(Self {
            branch_a,
            branch_b,
            head,
            x_a_scaler,
            x_b_scaler,
            y_scaler,
            window: cfg.window,
            n_counties,
        })
    }

    /// Forecast next-week county incidence from the observed state series.
    /// Uses the final `window` weeks of `observed_state`.
    pub fn forecast_counties(&self, observed_state: &[f64], total_weeks: usize) -> Result<Vec<f64>> {
        if observed_state.len() < self.window {
            return Err(NetError::InsufficientData(format!(
                "need {} observed weeks, have {}",
                self.window,
                observed_state.len()
            )));
        }
        let w = observed_state.len();
        let mut xa = observed_state[w - self.window..].to_vec();
        self.x_a_scaler
            .transform_slice(&mut xa)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        let cum: f64 = observed_state.iter().sum();
        let mut xb = vec![w as f64 / total_weeks.max(1) as f64, cum];
        self.x_b_scaler
            .transform_slice(&mut xb)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        let a_code = self
            .branch_a
            .predict(&Matrix::from_vec(1, self.window, xa).map_err(|e| NetError::Internal(e.to_string()))?)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        let b_code = self
            .branch_b
            .predict(&Matrix::from_vec(1, 2, xb).map_err(|e| NetError::Internal(e.to_string()))?)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        let fused = hstack(&a_code, &b_code);
        let pred = self
            .head
            .predict(&fused)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        let mut out = pred.as_slice().to_vec();
        self.y_scaler
            .inverse_transform_slice(&mut out)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        // Incidence cannot be negative.
        for v in &mut out {
            *v = v.max(0.0);
        }
        Ok(out)
    }

    /// State-level forecast: sum of county forecasts (DEFSI's consistency
    /// property — high-resolution forecasts aggregate to the coarse level).
    pub fn forecast_state(&self, observed_state: &[f64], total_weeks: usize) -> Result<f64> {
        Ok(self.forecast_counties(observed_state, total_weeks)?.iter().sum())
    }

    /// Autoregressive multi-horizon forecast: `out[h][c]` is county `c`,
    /// `h+1` weeks ahead. Each step's predicted state total is degraded by
    /// `reporting_fraction` (the scale of the observed series) and appended
    /// to the window, exactly as it would arrive from surveillance.
    pub fn forecast_counties_multi(
        &self,
        observed_state: &[f64],
        total_weeks: usize,
        horizon: usize,
        reporting_fraction: f64,
    ) -> Result<Vec<Vec<f64>>> {
        if horizon == 0 {
            return Err(NetError::InvalidConfig("horizon must be ≥ 1".into()));
        }
        if !(0.0..=1.0).contains(&reporting_fraction) || le_linalg::approx::approx_eq(reporting_fraction, 0.0) {
            return Err(NetError::InvalidConfig(format!(
                "reporting fraction {reporting_fraction} must be in (0, 1]"
            )));
        }
        let mut window = observed_state.to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let counties = self.forecast_counties(&window, total_weeks)?;
            let state_true: f64 = counties.iter().sum();
            // What surveillance would report for the predicted week.
            window.push(state_true * reporting_fraction);
            out.push(counties);
        }
        Ok(out)
    }
}

/// Forecast-quality summary at both resolutions.
#[derive(Debug, Clone, Copy)]
pub struct ForecastScore {
    /// RMSE of next-week state-level forecasts.
    pub state_rmse: f64,
    /// RMSE of next-week county-level forecasts (pooled over counties).
    pub county_rmse: f64,
    /// Number of forecast points scored.
    pub n_points: usize,
}

/// Score a forecaster over all weeks of a truth season.
/// `forecast(observed_prefix) -> county predictions`.
pub fn score_forecaster(
    truth: &SeirOutcome,
    surveillance: &Surveillance,
    window: usize,
    obs_seed: u64,
    mut forecast: impl FnMut(&[f64]) -> Result<Vec<f64>>,
) -> Result<ForecastScore> {
    let sv_full = Surveillance {
        delay_weeks: 0,
        ..*surveillance
    };
    let observed = sv_full.observe_state(truth, obs_seed);
    let county_truth = Surveillance::true_weekly_by_county(truth);
    let weeks = observed.len();
    let mut se_state = 0.0;
    let mut se_county = 0.0;
    let mut n_state = 0usize;
    let mut n_county = 0usize;
    for w in window..weeks {
        let pred_counties = forecast(&observed[..w])?;
        let mut true_state = 0.0;
        let mut pred_state = 0.0;
        for (c, pred) in pred_counties.iter().enumerate() {
            let actual = county_truth
                .get(c)
                .and_then(|s| s.get(w))
                .copied()
                .unwrap_or(0.0);
            se_county += (pred - actual) * (pred - actual);
            n_county += 1;
            true_state += actual;
            pred_state += pred;
        }
        se_state += (pred_state - true_state) * (pred_state - true_state);
        n_state += 1;
    }
    if n_state == 0 {
        return Err(NetError::InsufficientData(
            "no forecastable weeks in season".into(),
        ));
    }
    Ok(ForecastScore {
        state_rmse: (se_state / n_state as f64).sqrt(),
        county_rmse: (se_county / n_county as f64).sqrt(),
        n_points: n_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    fn test_pop() -> Population {
        Population::generate(
            &PopulationConfig {
                county_sizes: vec![250; 4],
                mean_degree_within: 8.0,
                mean_degree_across: 1.0,
            },
            201,
        )
        .unwrap()
    }

    fn base_cfg() -> SeirConfig {
        SeirConfig {
            transmissibility: 0.08,
            days: 84,
            ..Default::default()
        }
    }

    #[test]
    fn hstack_hsplit_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let f = hstack(&a, &b);
        assert_eq!(f.shape(), (2, 3));
        assert_eq!(f.row(0), &[1.0, 2.0, 5.0]);
        let (a2, b2) = hsplit(&f, 2);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn synthetic_seasons_have_expected_shapes() {
        let pop = test_pop();
        let seasons = generate_synthetic_seasons(
            &pop,
            &base_cfg(),
            &Surveillance::default(),
            0.08,
            0.01,
            4,
            77,
        )
        .unwrap();
        assert_eq!(seasons.len(), 4);
        for s in &seasons {
            assert_eq!(s.county_truth.len(), 4);
            assert_eq!(s.observed_state.len(), 12, "84 days = 12 weeks, no delay");
        }
    }

    #[test]
    fn synthetic_generation_is_deterministic() {
        let pop = test_pop();
        let make = || {
            generate_synthetic_seasons(
                &pop,
                &base_cfg(),
                &Surveillance::default(),
                0.08,
                0.01,
                3,
                88,
            )
            .unwrap()
        };
        let a = make();
        let b = make();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.observed_state, y.observed_state);
        }
    }

    #[test]
    fn build_rows_counts() {
        let season = SyntheticSeason {
            observed_state: vec![1.0; 10],
            county_truth: vec![vec![1.0; 10]; 3],
        };
        let (a, b, y) = build_rows(&[season], 4, 3);
        // Weeks 4..10 = 6 rows.
        assert_eq!(a.shape(), (6, 4));
        assert_eq!(b.shape(), (6, 2));
        assert_eq!(y.shape(), (6, 3));
    }

    #[test]
    fn defsi_trains_and_forecasts() {
        let pop = test_pop();
        let seasons = generate_synthetic_seasons(
            &pop,
            &base_cfg(),
            &Surveillance::default(),
            0.08,
            0.015,
            12,
            99,
        )
        .unwrap();
        let net = TwoBranchNet::train(
            &seasons,
            4,
            &DefsiTrainConfig {
                epochs: 60,
                ..Default::default()
            },
        )
        .unwrap();
        // Forecast from a fresh season.
        let truth = crate::epifast::hidden_truth_season(&pop, 0.08, &base_cfg(), 1234).unwrap();
        let obs = Surveillance {
            delay_weeks: 0,
            ..Default::default()
        }
        .observe_state(&truth, 55);
        let pred = net.forecast_counties(&obs[..6], 12).unwrap();
        assert_eq!(pred.len(), 4);
        assert!(pred.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let state = net.forecast_state(&obs[..6], 12).unwrap();
        assert!((state - pred.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn forecast_requires_window() {
        let pop = test_pop();
        let seasons = generate_synthetic_seasons(
            &pop,
            &base_cfg(),
            &Surveillance::default(),
            0.08,
            0.01,
            8,
            111,
        )
        .unwrap();
        let net = TwoBranchNet::train(
            &seasons,
            4,
            &DefsiTrainConfig {
                epochs: 10,
                window: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(net.forecast_counties(&[1.0, 2.0], 12).is_err());
    }

    #[test]
    fn multi_horizon_forecast_shapes_and_validation() {
        let pop = test_pop();
        let seasons = generate_synthetic_seasons(
            &pop,
            &base_cfg(),
            &Surveillance::default(),
            0.08,
            0.01,
            10,
            222,
        )
        .unwrap();
        let net = TwoBranchNet::train(
            &seasons,
            4,
            &DefsiTrainConfig {
                epochs: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let obs = &seasons[0].observed_state;
        let multi = net
            .forecast_counties_multi(&obs[..6], 12, 3, 0.3)
            .unwrap();
        assert_eq!(multi.len(), 3, "one row per horizon");
        assert!(multi.iter().all(|row| row.len() == 4));
        assert!(multi
            .iter()
            .flatten()
            .all(|&v| v.is_finite() && v >= 0.0));
        // Horizon 1 matches the single-step API.
        let single = net.forecast_counties(&obs[..6], 12).unwrap();
        assert_eq!(multi[0], single);
        // Validation.
        assert!(net.forecast_counties_multi(&obs[..6], 12, 0, 0.3).is_err());
        assert!(net.forecast_counties_multi(&obs[..6], 12, 2, 0.0).is_err());
        assert!(net.forecast_counties_multi(&obs[..6], 12, 2, 1.5).is_err());
    }

    #[test]
    fn training_needs_data() {
        let empty: Vec<SyntheticSeason> = Vec::new();
        assert!(TwoBranchNet::train(&empty, 4, &DefsiTrainConfig::default()).is_err());
    }

    #[test]
    fn defsi_beats_uniform_split_at_county_level() {
        // The headline DEFSI claim, in miniature: against a baseline that
        // knows the state total but splits it uniformly, the simulation-
        // trained net should be better at county resolution.
        let pop = test_pop();
        let sv = Surveillance {
            reporting_fraction: 0.3,
            noise: 0.05,
            delay_weeks: 0,
        };
        let seasons =
            generate_synthetic_seasons(&pop, &base_cfg(), &sv, 0.08, 0.015, 16, 321).unwrap();
        let net = TwoBranchNet::train(
            &seasons,
            4,
            &DefsiTrainConfig {
                epochs: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let truth = crate::epifast::hidden_truth_season(&pop, 0.08, &base_cfg(), 999).unwrap();
        let defsi_score = score_forecaster(&truth, &sv, 4, 42, |obs| {
            net.forecast_counties(obs, 12)
        })
        .unwrap();
        // Baseline: last observed state value, scaled to true scale, split
        // uniformly over counties.
        let naive_score = score_forecaster(&truth, &sv, 4, 42, |obs| {
            let last = *obs.last().expect("window >= 1") / sv.reporting_fraction;
            Ok(vec![last / 4.0; 4])
        })
        .unwrap();
        assert!(
            defsi_score.county_rmse < naive_score.county_rmse * 1.2,
            "DEFSI county RMSE {} should be competitive with naive {}",
            defsi_score.county_rmse,
            naive_score.county_rmse
        );
    }
}
