//! Discrete-time stochastic SEIR dynamics on a contact network
//! (paper ref \[18\]: Newman, "Spread of epidemic disease on networks").
//!
//! Each day, every susceptible contact of an infectious person becomes
//! exposed independently with probability `transmissibility`; exposed and
//! infectious durations are geometric with the configured means. The
//! simulator reports *daily incidence* (new infections) per county — the
//! "high-resolution detail" that DEFSI learns and that coarse surveillance
//! cannot see.

use le_linalg::Rng;

use crate::population::Population;
use crate::{NetError, Result};

/// Per-node disease state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Susceptible,
    Exposed,
    Infectious,
    Recovered,
}

/// SEIR model parameters.
#[derive(Debug, Clone, Copy)]
pub struct SeirConfig {
    /// Per-contact per-day transmission probability.
    pub transmissibility: f64,
    /// Mean incubation (E) duration in days.
    pub mean_incubation: f64,
    /// Mean infectious (I) duration in days.
    pub mean_infectious: f64,
    /// Number of initial seed infections (placed uniformly at random).
    pub initial_infections: usize,
    /// Days to simulate.
    pub days: usize,
}

impl Default for SeirConfig {
    fn default() -> Self {
        Self {
            transmissibility: 0.05,
            mean_incubation: 2.0,
            mean_infectious: 4.0,
            initial_infections: 5,
            days: 120,
        }
    }
}

impl SeirConfig {
    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.transmissibility) {
            return Err(NetError::InvalidConfig(format!(
                "transmissibility {} not in [0,1]",
                self.transmissibility
            )));
        }
        if self.mean_incubation < 1.0 || self.mean_infectious < 1.0 {
            return Err(NetError::InvalidConfig(
                "mean durations must be at least 1 day".into(),
            ));
        }
        if self.initial_infections == 0 {
            return Err(NetError::InvalidConfig("need at least one seed".into()));
        }
        if self.days == 0 {
            return Err(NetError::InvalidConfig("days must be > 0".into()));
        }
        Ok(())
    }
}

/// The result of one epidemic realization.
#[derive(Debug, Clone)]
pub struct SeirOutcome {
    /// `incidence[c][t]` = new infections in county `c` on day `t`.
    pub incidence: Vec<Vec<f64>>,
    /// Total attack rate (fraction of the population ever infected).
    pub attack_rate: f64,
    /// Day of state-wide peak incidence.
    pub peak_day: usize,
}

impl SeirOutcome {
    /// State-level daily incidence (sum over counties).
    pub fn state_incidence(&self) -> Vec<f64> {
        if self.incidence.is_empty() {
            return Vec::new();
        }
        let days = self.incidence[0].len();
        (0..days)
            .map(|t| self.incidence.iter().map(|c| c[t]).sum())
            .collect()
    }

    /// Aggregate daily series into weekly totals (CDC-style reporting).
    pub fn weekly(series: &[f64]) -> Vec<f64> {
        series.chunks(7).map(|w| w.iter().sum()).collect()
    }
}

/// Run one stochastic SEIR realization on `pop`.
pub fn simulate(pop: &Population, config: &SeirConfig, seed: u64) -> Result<SeirOutcome> {
    config.validate()?;
    let n = pop.size();
    if config.initial_infections > n {
        return Err(NetError::InvalidConfig(format!(
            "{} seeds exceed population {n}",
            config.initial_infections
        )));
    }
    let mut rng = Rng::new(seed);
    let mut state = vec![State::Susceptible; n];
    // Geometric daily exit probabilities matching the mean durations.
    let p_ei = 1.0 / config.mean_incubation;
    let p_ir = 1.0 / config.mean_infectious;

    let mut incidence = vec![vec![0.0; config.days]; pop.n_counties];
    // Seed infectious individuals.
    for &i in rng.sample_indices(n, config.initial_infections).iter() {
        state[i] = State::Infectious;
    }
    let mut ever_infected = config.initial_infections;

    let mut infectious: Vec<u32> = state
        .iter()
        .enumerate()
        .filter(|(_, &s)| s == State::Infectious)
        .map(|(i, _)| i as u32)
        .collect();

    for day in 0..config.days {
        // Transmission: each infectious node exposes susceptible neighbors.
        let mut newly_exposed: Vec<u32> = Vec::new();
        for &i in &infectious {
            for &j in pop.contacts.neighbors(i as usize) {
                if state[j as usize] == State::Susceptible
                    && rng.bernoulli(config.transmissibility)
                {
                    state[j as usize] = State::Exposed;
                    newly_exposed.push(j);
                }
            }
        }
        // Record incidence at exposure time (infection event).
        for &j in &newly_exposed {
            incidence[pop.county[j as usize] as usize][day] += 1.0;
            ever_infected += 1;
        }
        // Progression E -> I and I -> R.
        let mut next_infectious = Vec::with_capacity(infectious.len());
        for &i in &infectious {
            if rng.bernoulli(p_ir) {
                state[i as usize] = State::Recovered;
            } else {
                next_infectious.push(i);
            }
        }
        for i in 0..n {
            if state[i] == State::Exposed && rng.bernoulli(p_ei) {
                state[i] = State::Infectious;
                next_infectious.push(i as u32);
            }
        }
        infectious = next_infectious;
        if infectious.is_empty() && !state.contains(&State::Exposed) {
            break; // epidemic died out
        }
    }
    let state_series: Vec<f64> = (0..config.days)
        .map(|t| incidence.iter().map(|c| c[t]).sum())
        .collect();
    let peak_day = state_series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(SeirOutcome {
        incidence,
        attack_rate: ever_infected as f64 / n as f64,
        peak_day,
    })
}

/// Run `n_replicates` realizations (different seeds) and average the
/// per-county incidence curves. Stochastic VT-style models "require many
/// replicas" (§II-B) — this is that ensemble.
pub fn simulate_ensemble(
    pop: &Population,
    config: &SeirConfig,
    n_replicates: usize,
    seed: u64,
) -> Result<SeirOutcome> {
    if n_replicates == 0 {
        return Err(NetError::InvalidConfig("need at least one replicate".into()));
    }
    let outcomes: Result<Vec<SeirOutcome>> =
        le_pool::par_map_index(n_replicates, |r| {
            simulate(pop, config, seed.wrapping_add(r as u64).wrapping_mul(0x1234_5677))
        })
        .into_iter()
        .collect();
    let outcomes = outcomes?;
    let mut incidence = vec![vec![0.0; config.days]; pop.n_counties];
    let mut attack = 0.0;
    for o in &outcomes {
        for (c, series) in o.incidence.iter().enumerate() {
            for (t, &v) in series.iter().enumerate() {
                incidence[c][t] += v;
            }
        }
        attack += o.attack_rate;
    }
    let k = n_replicates as f64;
    for series in &mut incidence {
        for v in series.iter_mut() {
            *v /= k;
        }
    }
    let state_series: Vec<f64> = (0..config.days)
        .map(|t| incidence.iter().map(|c| c[t]).sum())
        .collect();
    let peak_day = state_series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(SeirOutcome {
        incidence,
        attack_rate: attack / k,
        peak_day,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    fn test_pop(seed: u64) -> Population {
        Population::generate(
            &PopulationConfig {
                county_sizes: vec![400; 4],
                mean_degree_within: 8.0,
                mean_degree_across: 1.0,
            },
            seed,
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let pop = test_pop(1);
        let bad_t = SeirConfig {
            transmissibility: 1.5,
            ..Default::default()
        };
        assert!(simulate(&pop, &bad_t, 1).is_err());
        let bad_seeds = SeirConfig {
            initial_infections: 0,
            ..Default::default()
        };
        assert!(simulate(&pop, &bad_seeds, 1).is_err());
        let too_many = SeirConfig {
            initial_infections: 10_000,
            ..Default::default()
        };
        assert!(simulate(&pop, &too_many, 1).is_err());
        let bad_dur = SeirConfig {
            mean_infectious: 0.5,
            ..Default::default()
        };
        assert!(simulate(&pop, &bad_dur, 1).is_err());
    }

    #[test]
    fn epidemic_spreads_at_high_transmissibility() {
        let pop = test_pop(2);
        let cfg = SeirConfig {
            transmissibility: 0.15,
            ..Default::default()
        };
        let out = simulate(&pop, &cfg, 3).unwrap();
        assert!(
            out.attack_rate > 0.5,
            "high transmissibility should infect most, got {}",
            out.attack_rate
        );
        // Incidence curve rises then falls: the peak is not at day 0 or end.
        assert!(out.peak_day > 0 && out.peak_day < cfg.days - 1);
    }

    #[test]
    fn epidemic_dies_out_at_zero_transmissibility() {
        let pop = test_pop(4);
        let cfg = SeirConfig {
            transmissibility: 0.0,
            initial_infections: 5,
            ..Default::default()
        };
        let out = simulate(&pop, &cfg, 5).unwrap();
        // Only seeds got infected.
        assert!((out.attack_rate - 5.0 / 1600.0).abs() < 1e-12);
        assert!(out.state_incidence().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn attack_rate_monotone_in_transmissibility() {
        let pop = test_pop(6);
        let attack_at = |t: f64| {
            let cfg = SeirConfig {
                transmissibility: t,
                ..Default::default()
            };
            simulate_ensemble(&pop, &cfg, 5, 7).unwrap().attack_rate
        };
        let low = attack_at(0.01);
        let mid = attack_at(0.05);
        let high = attack_at(0.2);
        assert!(low < mid && mid < high, "attack rates {low}, {mid}, {high}");
    }

    #[test]
    fn incidence_sums_match_attack_rate() {
        let pop = test_pop(8);
        let cfg = SeirConfig {
            transmissibility: 0.1,
            ..Default::default()
        };
        let out = simulate(&pop, &cfg, 9).unwrap();
        let total_incidence: f64 = out.state_incidence().iter().sum();
        // attack_rate includes the seeds, which have no incidence record.
        let expected = out.attack_rate * pop.size() as f64 - cfg.initial_infections as f64;
        assert!(
            (total_incidence - expected).abs() < 1e-9,
            "incidence {total_incidence} vs expected {expected}"
        );
    }

    #[test]
    fn weekly_aggregation() {
        let daily: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let weekly = SeirOutcome::weekly(&daily);
        assert_eq!(weekly.len(), 3);
        assert_eq!(weekly[0], 21.0);
        assert_eq!(weekly[1], 70.0);
        assert_eq!(weekly[2], 14.0); // partial week
    }

    #[test]
    fn county_heterogeneity_exists() {
        // Counties differ in realized incidence (the high-resolution signal
        // that coarse state data hides).
        let pop = test_pop(10);
        let cfg = SeirConfig {
            transmissibility: 0.08,
            ..Default::default()
        };
        let out = simulate(&pop, &cfg, 11).unwrap();
        let totals: Vec<f64> = out.incidence.iter().map(|c| c.iter().sum()).collect();
        let max = totals.iter().fold(0.0f64, |m, &v| m.max(v));
        let min = totals.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        assert!(max > min, "counties should differ: {totals:?}");
    }

    #[test]
    fn ensemble_is_smoother_than_single_run() {
        let pop = test_pop(12);
        let cfg = SeirConfig {
            transmissibility: 0.08,
            ..Default::default()
        };
        let single = simulate(&pop, &cfg, 13).unwrap();
        let ens = simulate_ensemble(&pop, &cfg, 10, 13).unwrap();
        // Roughness = mean |second difference| of the state curve.
        let rough = |xs: &[f64]| {
            xs.windows(3)
                .map(|w| (w[0] - 2.0 * w[1] + w[2]).abs())
                .sum::<f64>()
                / xs.len().max(1) as f64
        };
        let rs = rough(&single.state_incidence());
        let re = rough(&ens.state_incidence());
        assert!(re < rs, "ensemble roughness {re} should be < single {rs}");
    }

    #[test]
    fn deterministic_given_seed() {
        let pop = test_pop(14);
        let cfg = SeirConfig::default();
        let a = simulate(&pop, &cfg, 15).unwrap();
        let b = simulate(&pop, &cfg, 15).unwrap();
        assert_eq!(a.incidence, b.incidence);
        // Ensemble determinism across thread schedules.
        let ea = simulate_ensemble(&pop, &cfg, 4, 16).unwrap();
        let eb = simulate_ensemble(&pop, &cfg, 4, 16).unwrap();
        assert_eq!(ea.incidence, eb.incidence);
    }
}
