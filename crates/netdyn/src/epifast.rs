//! EpiFast-style baseline forecaster: calibrate the mechanistic model
//! against observed state-level surveillance by simulation search, then
//! forecast by running the calibrated model forward. This is the
//! "interventionist" mechanistic baseline DEFSI is compared against in
//! paper ref \[19\].

use le_linalg::Rng;
use le_pool as pool;

use crate::population::Population;
use crate::seir::{simulate_ensemble, SeirConfig};
use crate::{NetError, Result};

/// Calibration + forecasting configuration.
#[derive(Debug, Clone)]
pub struct EpiFast {
    /// Transmissibility grid searched during calibration.
    pub tau_grid: Vec<f64>,
    /// Ensemble replicates per candidate during calibration.
    pub calib_replicates: usize,
    /// Ensemble replicates for the forecast run.
    pub forecast_replicates: usize,
    /// Known (assumed) reporting fraction used to undo under-reporting.
    pub reporting_fraction: f64,
    /// Base SEIR configuration (durations, seeds, days).
    pub base: SeirConfig,
}

impl EpiFast {
    /// Default grid spanning subcritical to strongly spreading.
    pub fn new(base: SeirConfig, reporting_fraction: f64) -> Self {
        Self {
            tau_grid: (1..=12).map(|i| 0.01 * i as f64).collect(),
            calib_replicates: 3,
            forecast_replicates: 5,
            reporting_fraction,
            base,
        }
    }

    /// Calibrate transmissibility to the observed weekly state series.
    /// Returns the best `tau` and its fit RMSE.
    pub fn calibrate(
        &self,
        pop: &Population,
        observed_weekly_state: &[f64],
        seed: u64,
    ) -> Result<(f64, f64)> {
        if observed_weekly_state.is_empty() {
            return Err(NetError::InsufficientData("empty observation".into()));
        }
        // Scale observations back to true-case scale.
        let target: Vec<f64> = observed_weekly_state
            .iter()
            .map(|&v| v / self.reporting_fraction)
            .collect();
        let scored: Vec<(f64, f64)> =
            pool::par_map(&self.tau_grid, |&tau| {
                let cfg = SeirConfig {
                    transmissibility: tau,
                    ..self.base
                };
                let out = simulate_ensemble(pop, &cfg, self.calib_replicates, seed)
                    .expect("validated config"); // lint:allow(no-panic): config validated before calibration starts
                let weekly = crate::seir::SeirOutcome::weekly(&out.state_incidence());
                let k = target.len().min(weekly.len());
                let rmse = if k == 0 {
                    f64::INFINITY
                } else {
                    (target[..k]
                        .iter()
                        .zip(weekly[..k].iter())
                        .map(|(&t, &w)| (t - w) * (t - w))
                        .sum::<f64>()
                        / k as f64)
                        .sqrt()
                };
                (tau, rmse)
            });
        scored
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .ok_or_else(|| NetError::Internal("empty tau grid".into()))
    }

    /// Forecast weekly incidence for `horizon` weeks after the observation
    /// window, at both state and county level, using the calibrated model.
    ///
    /// Returns `(state_forecast, county_forecasts)` where
    /// `county_forecasts[c][h]` is county `c`, week `observed_len + h`.
    pub fn forecast(
        &self,
        pop: &Population,
        observed_weekly_state: &[f64],
        horizon: usize,
        seed: u64,
    ) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
        let (tau, _) = self.calibrate(pop, observed_weekly_state, seed)?;
        let cfg = SeirConfig {
            transmissibility: tau,
            ..self.base
        };
        let out = simulate_ensemble(pop, &cfg, self.forecast_replicates, seed ^ 0xF0F0)?;
        let weekly_by_county: Vec<Vec<f64>> = out
            .incidence
            .iter()
            .map(|d| crate::seir::SeirOutcome::weekly(d))
            .collect();
        let start = observed_weekly_state.len();
        let mut state = Vec::with_capacity(horizon);
        let mut county = vec![Vec::with_capacity(horizon); pop.n_counties];
        for h in 0..horizon {
            let w = start + h;
            let mut s = 0.0;
            for (c, series) in weekly_by_county.iter().enumerate() {
                let v = series.get(w).copied().unwrap_or(0.0);
                county[c].push(v);
                s += v;
            }
            state.push(s);
        }
        Ok((state, county))
    }
}

/// A ground-truth "real world" season generator: runs the simulator with a
/// hidden transmissibility; the experiment's task is to forecast it from
/// surveillance only.
pub fn hidden_truth_season(
    pop: &Population,
    hidden_tau: f64,
    base: &SeirConfig,
    seed: u64,
) -> Result<crate::seir::SeirOutcome> {
    let cfg = SeirConfig {
        transmissibility: hidden_tau,
        ..*base
    };
    crate::seir::simulate(pop, &cfg, seed)
}

/// Convenience: the random seed stream used by season generation — split a
/// master seed into per-season seeds.
pub fn season_seeds(master: u64, n: usize) -> Vec<u64> {
    let mut rng = Rng::new(master);
    (0..n).map(|_| rng.next_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use crate::surveillance::Surveillance;

    fn test_pop() -> Population {
        Population::generate(
            &PopulationConfig {
                county_sizes: vec![300; 4],
                mean_degree_within: 8.0,
                mean_degree_across: 1.0,
            },
            101,
        )
        .unwrap()
    }

    fn quick_epifast() -> EpiFast {
        let base = SeirConfig {
            days: 84, // 12 weeks
            ..Default::default()
        };
        EpiFast {
            tau_grid: vec![0.02, 0.05, 0.08, 0.12],
            calib_replicates: 2,
            forecast_replicates: 3,
            reporting_fraction: 0.3,
            base,
        }
    }

    #[test]
    fn calibration_recovers_hidden_transmissibility() {
        let pop = test_pop();
        let ef = quick_epifast();
        let hidden = 0.08;
        let truth = hidden_truth_season(&pop, hidden, &ef.base, 7).unwrap();
        let obs = Surveillance {
            reporting_fraction: 0.3,
            noise: 0.05,
            delay_weeks: 1,
        }
        .observe_state(&truth, 8);
        let (tau, rmse) = ef.calibrate(&pop, &obs, 9).unwrap();
        assert!(
            (tau - hidden).abs() <= 0.04,
            "calibrated tau {tau} should be near hidden {hidden} (rmse {rmse})"
        );
    }

    #[test]
    fn calibration_rejects_empty_observation() {
        let pop = test_pop();
        let ef = quick_epifast();
        assert!(ef.calibrate(&pop, &[], 1).is_err());
    }

    #[test]
    fn forecast_shapes_and_nonnegativity() {
        let pop = test_pop();
        let ef = quick_epifast();
        let truth = hidden_truth_season(&pop, 0.08, &ef.base, 17).unwrap();
        let obs = Surveillance::default().observe_state(&truth, 18);
        let horizon = 3;
        let (state, county) = ef.forecast(&pop, &obs, horizon, 19).unwrap();
        assert_eq!(state.len(), horizon);
        assert_eq!(county.len(), 4);
        assert!(county.iter().all(|c| c.len() == horizon));
        assert!(state.iter().all(|&v| v >= 0.0));
        // State forecast is the sum of county forecasts.
        for h in 0..horizon {
            let s: f64 = county.iter().map(|c| c[h]).sum();
            assert!((s - state[h]).abs() < 1e-9);
        }
    }

    #[test]
    fn season_seeds_deterministic_and_distinct() {
        let a = season_seeds(5, 10);
        let b = season_seeds(5, 10);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }
}
