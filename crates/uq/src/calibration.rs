//! Calibration diagnostics for UQ methods.
//!
//! Research issue 10 of the paper: "two models with different dropout rates
//! can produce different UQ results" — so the quality of a UQ method must be
//! *measured*, not assumed. The standard measurement for regression UQ is
//! interval coverage: a well-calibrated predictor's nominal q-probability
//! central interval should contain the truth a fraction q of the time.

use crate::Prediction;

use crate::interval::z_for as z_for_coverage;

/// Fraction of targets inside each prediction's nominal-q central interval,
/// for a single output dimension `dim`.
pub fn coverage(preds: &[Prediction], targets: &[Vec<f64>], dim: usize, q: f64) -> f64 {
    assert_eq!(preds.len(), targets.len(), "preds/targets length mismatch");
    assert!(!preds.is_empty(), "coverage of empty set");
    let z = z_for_coverage(q);
    let inside = preds
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| {
            let (lo, hi) = (p.mean[dim] - z * p.std[dim], p.mean[dim] + z * p.std[dim]);
            (lo..=hi).contains(&t[dim])
        })
        .count();
    inside as f64 / preds.len() as f64
}

/// A full reliability summary across a grid of nominal coverage levels.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Nominal coverage levels probed.
    pub nominal: Vec<f64>,
    /// Observed coverage at each level.
    pub observed: Vec<f64>,
    /// Mean absolute calibration error across levels.
    pub mace: f64,
    /// Mean predicted std (sharpness; smaller is sharper).
    pub sharpness: f64,
}

/// Compute observed coverage over the standard grid {0.1, …, 0.9} and the
/// mean absolute calibration error, for output dimension `dim`.
pub fn calibration_error(preds: &[Prediction], targets: &[Vec<f64>], dim: usize) -> CalibrationReport {
    let nominal: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();
    let observed: Vec<f64> = nominal
        .iter()
        .map(|&q| coverage(preds, targets, dim, q))
        .collect();
    let mace = nominal
        .iter()
        .zip(observed.iter())
        .map(|(&n, &o)| (n - o).abs())
        .sum::<f64>()
        / nominal.len() as f64;
    let sharpness =
        preds.iter().map(|p| p.std[dim]).sum::<f64>() / preds.len().max(1) as f64;
    CalibrationReport {
        nominal,
        observed,
        mace,
        sharpness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;

    /// Build synthetic predictions with controllable honesty: the truth is
    /// mean + noise_scale * std * gaussian. noise_scale = 1 -> perfectly
    /// calibrated; < 1 -> over-conservative; > 1 -> over-confident.
    fn synthetic(n: usize, noise_scale: f64, seed: u64) -> (Vec<Prediction>, Vec<Vec<f64>>) {
        let mut rng = Rng::new(seed);
        let mut preds = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = rng.uniform_in(-5.0, 5.0);
            let std = rng.uniform_in(0.5, 2.0);
            let t = mean + noise_scale * std * rng.gaussian();
            preds.push(Prediction {
                mean: vec![mean],
                std: vec![std],
            });
            targets.push(vec![t]);
        }
        (preds, targets)
    }

    #[test]
    fn z_for_coverage_known_values() {
        // 68% -> ~1.0, 95% -> ~1.96, 50% -> ~0.674
        assert!((z_for_coverage(0.6827) - 1.0).abs() < 0.02);
        assert!((z_for_coverage(0.95) - 1.96).abs() < 0.03);
        assert!((z_for_coverage(0.5) - 0.6745).abs() < 0.02);
    }

    #[test]
    fn perfectly_calibrated_has_low_mace() {
        let (preds, targets) = synthetic(20_000, 1.0, 61);
        let report = calibration_error(&preds, &targets, 0);
        assert!(report.mace < 0.02, "calibrated MACE {}", report.mace);
        // Observed coverage tracks nominal at every level.
        for (n, o) in report.nominal.iter().zip(report.observed.iter()) {
            assert!((n - o).abs() < 0.03, "nominal {n} observed {o}");
        }
    }

    #[test]
    fn overconfident_predictor_undercovers() {
        let (preds, targets) = synthetic(10_000, 2.0, 62);
        let report = calibration_error(&preds, &targets, 0);
        // True spread is twice the predicted std: observed < nominal.
        for (n, o) in report.nominal.iter().zip(report.observed.iter()) {
            assert!(o < n, "overconfident: observed {o} should be < nominal {n}");
        }
        assert!(report.mace > 0.1);
    }

    #[test]
    fn conservative_predictor_overcovers() {
        let (preds, targets) = synthetic(10_000, 0.5, 63);
        let report = calibration_error(&preds, &targets, 0);
        for (n, o) in report.nominal.iter().zip(report.observed.iter()) {
            assert!(o > n, "conservative: observed {o} should be > nominal {n}");
        }
    }

    #[test]
    fn sharpness_is_mean_std() {
        let preds = vec![
            Prediction {
                mean: vec![0.0],
                std: vec![1.0],
            },
            Prediction {
                mean: vec![0.0],
                std: vec![3.0],
            },
        ];
        let targets = vec![vec![0.0], vec![0.0]];
        let report = calibration_error(&preds, &targets, 0);
        assert!((report.sharpness - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_zero_std_exact_hit() {
        let preds = vec![Prediction {
            mean: vec![1.0],
            std: vec![0.0],
        }];
        // Exact match is inside the degenerate interval; any miss is outside.
        assert_eq!(coverage(&preds, &[vec![1.0]], 0, 0.9), 1.0);
        assert_eq!(coverage(&preds, &[vec![1.1]], 0, 0.9), 0.0);
    }
}
