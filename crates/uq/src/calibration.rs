//! Calibration diagnostics for UQ methods.
//!
//! Research issue 10 of the paper: "two models with different dropout rates
//! can produce different UQ results" — so the quality of a UQ method must be
//! *measured*, not assumed. The standard measurement for regression UQ is
//! interval coverage: a well-calibrated predictor's nominal q-probability
//! central interval should contain the truth a fraction q of the time.

use crate::{Prediction, UqError};

use crate::interval::z_for as z_for_coverage;

/// Validate the common preconditions of the coverage diagnostics: a
/// non-empty, length-matched prediction/target set whose vectors all reach
/// output dimension `dim`. Returns the typed defect instead of a NaN, a
/// silent 0.0, or an index panic.
fn validate(preds: &[Prediction], targets: &[Vec<f64>], dim: usize) -> Result<(), UqError> {
    if preds.is_empty() {
        return Err(UqError::EmptySet);
    }
    if preds.len() != targets.len() {
        return Err(UqError::LengthMismatch {
            preds: preds.len(),
            targets: targets.len(),
        });
    }
    let width = preds
        .iter()
        .flat_map(|p| [p.mean.len(), p.std.len()])
        .chain(targets.iter().map(|t| t.len()))
        .min()
        .unwrap_or(0); // lint:allow(no-panic): non-empty checked above
    if dim >= width {
        return Err(UqError::DimOutOfRange { dim, width });
    }
    Ok(())
}

/// Fraction of targets inside each prediction's nominal-q central interval,
/// for a single output dimension `dim`.
///
/// Returns a typed [`UqError`] on an empty prediction set, a
/// predictions/targets length mismatch, a `dim` outside any prediction or
/// target vector, or a nominal level outside (0, 1) — the edge cases that
/// previously produced NaN or panicked.
pub fn coverage(
    preds: &[Prediction],
    targets: &[Vec<f64>],
    dim: usize,
    q: f64,
) -> Result<f64, UqError> {
    validate(preds, targets, dim)?;
    if !(q > 0.0 && q < 1.0) {
        return Err(UqError::BadNominal(q));
    }
    let z = z_for_coverage(q);
    let inside = preds
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| {
            let (lo, hi) = (p.mean[dim] - z * p.std[dim], p.mean[dim] + z * p.std[dim]);
            (lo..=hi).contains(&t[dim])
        })
        .count();
    Ok(inside as f64 / preds.len() as f64)
}

/// A full reliability summary across a grid of nominal coverage levels.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Nominal coverage levels probed.
    pub nominal: Vec<f64>,
    /// Observed coverage at each level.
    pub observed: Vec<f64>,
    /// Mean absolute calibration error across levels.
    pub mace: f64,
    /// Mean predicted std (sharpness; smaller is sharper).
    pub sharpness: f64,
}

/// Compute observed coverage over the standard grid {0.1, …, 0.9} and the
/// mean absolute calibration error, for output dimension `dim`.
///
/// Shares [`coverage`]'s typed edge-case contract: empty sets, length
/// mismatches, and an out-of-range `dim` are [`UqError`]s, never NaN.
pub fn calibration_error(
    preds: &[Prediction],
    targets: &[Vec<f64>],
    dim: usize,
) -> Result<CalibrationReport, UqError> {
    validate(preds, targets, dim)?;
    let nominal: Vec<f64> = (1..10).map(|i| i as f64 / 10.0).collect();
    let mut observed = Vec::with_capacity(nominal.len());
    for &q in &nominal {
        observed.push(coverage(preds, targets, dim, q)?);
    }
    let mace = nominal
        .iter()
        .zip(observed.iter())
        .map(|(&n, &o)| (n - o).abs())
        .sum::<f64>()
        / nominal.len() as f64;
    let sharpness = preds.iter().map(|p| p.std[dim]).sum::<f64>() / preds.len() as f64;
    Ok(CalibrationReport {
        nominal,
        observed,
        mace,
        sharpness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;

    /// Build synthetic predictions with controllable honesty: the truth is
    /// mean + noise_scale * std * gaussian. noise_scale = 1 -> perfectly
    /// calibrated; < 1 -> over-conservative; > 1 -> over-confident.
    fn synthetic(n: usize, noise_scale: f64, seed: u64) -> (Vec<Prediction>, Vec<Vec<f64>>) {
        let mut rng = Rng::new(seed);
        let mut preds = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = rng.uniform_in(-5.0, 5.0);
            let std = rng.uniform_in(0.5, 2.0);
            let t = mean + noise_scale * std * rng.gaussian();
            preds.push(Prediction {
                mean: vec![mean],
                std: vec![std],
            });
            targets.push(vec![t]);
        }
        (preds, targets)
    }

    #[test]
    fn z_for_coverage_known_values() {
        // 68% -> ~1.0, 95% -> ~1.96, 50% -> ~0.674
        assert!((z_for_coverage(0.6827) - 1.0).abs() < 0.02);
        assert!((z_for_coverage(0.95) - 1.96).abs() < 0.03);
        assert!((z_for_coverage(0.5) - 0.6745).abs() < 0.02);
    }

    #[test]
    fn perfectly_calibrated_has_low_mace() {
        let (preds, targets) = synthetic(20_000, 1.0, 61);
        let report = calibration_error(&preds, &targets, 0).unwrap();
        assert!(report.mace < 0.02, "calibrated MACE {}", report.mace);
        // Observed coverage tracks nominal at every level.
        for (n, o) in report.nominal.iter().zip(report.observed.iter()) {
            assert!((n - o).abs() < 0.03, "nominal {n} observed {o}");
        }
    }

    #[test]
    fn overconfident_predictor_undercovers() {
        let (preds, targets) = synthetic(10_000, 2.0, 62);
        let report = calibration_error(&preds, &targets, 0).unwrap();
        // True spread is twice the predicted std: observed < nominal.
        for (n, o) in report.nominal.iter().zip(report.observed.iter()) {
            assert!(o < n, "overconfident: observed {o} should be < nominal {n}");
        }
        assert!(report.mace > 0.1);
    }

    #[test]
    fn conservative_predictor_overcovers() {
        let (preds, targets) = synthetic(10_000, 0.5, 63);
        let report = calibration_error(&preds, &targets, 0).unwrap();
        for (n, o) in report.nominal.iter().zip(report.observed.iter()) {
            assert!(o > n, "conservative: observed {o} should be > nominal {n}");
        }
    }

    #[test]
    fn sharpness_is_mean_std() {
        let preds = vec![
            Prediction {
                mean: vec![0.0],
                std: vec![1.0],
            },
            Prediction {
                mean: vec![0.0],
                std: vec![3.0],
            },
        ];
        let targets = vec![vec![0.0], vec![0.0]];
        let report = calibration_error(&preds, &targets, 0).unwrap();
        assert!((report.sharpness - 2.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_zero_std_exact_hit() {
        let preds = vec![Prediction {
            mean: vec![1.0],
            std: vec![0.0],
        }];
        // Exact match is inside the degenerate interval; any miss is outside.
        assert_eq!(coverage(&preds, &[vec![1.0]], 0, 0.9).unwrap(), 1.0);
        assert_eq!(coverage(&preds, &[vec![1.1]], 0, 0.9).unwrap(), 0.0);
    }

    #[test]
    fn empty_set_is_a_typed_error_not_nan() {
        assert_eq!(coverage(&[], &[], 0, 0.9), Err(UqError::EmptySet));
        assert_eq!(calibration_error(&[], &[], 0).unwrap_err(), UqError::EmptySet);
    }

    #[test]
    fn length_mismatch_is_a_typed_error() {
        let (preds, _) = synthetic(4, 1.0, 64);
        let err = coverage(&preds, &[vec![0.0]], 0, 0.9).unwrap_err();
        assert_eq!(err, UqError::LengthMismatch { preds: 4, targets: 1 });
        assert!(matches!(
            calibration_error(&preds, &[vec![0.0]], 0),
            Err(UqError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn dim_out_of_range_is_a_typed_error_not_a_panic() {
        let (preds, targets) = synthetic(4, 1.0, 65);
        // 1-wide predictions: dim 3 used to index-panic; now it's typed.
        let err = coverage(&preds, &targets, 3, 0.9).unwrap_err();
        assert_eq!(err, UqError::DimOutOfRange { dim: 3, width: 1 });
        assert!(matches!(
            calibration_error(&preds, &targets, 3),
            Err(UqError::DimOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_nominal_level_is_a_typed_error() {
        let (preds, targets) = synthetic(4, 1.0, 66);
        for q in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(matches!(
                coverage(&preds, &targets, 0, q),
                Err(UqError::BadNominal(_))
            ));
        }
    }
}
