//! Deep ensembles: "averaging trained instances of an originally complex
//! model" (§III-B). Members are identically configured networks with
//! independent initializations, trained on the same data (optionally
//! bootstrap-resampled); the member spread estimates epistemic uncertainty.
//!
//! Members train in parallel on scoped threads — each member carries its own RNG
//! split up front so the result is identical at any thread count.

use le_linalg::{Matrix, Rng};
use le_pool as pool;
use le_nn::{Mlp, MlpConfig, TrainConfig, Trainer};

use crate::{Prediction, UncertainModel};

/// An ensemble of independently trained MLPs.
#[derive(Debug, Clone)]
pub struct DeepEnsemble {
    members: Vec<Mlp>,
}

impl DeepEnsemble {
    /// Train `n_members` networks of architecture `config` on `(x, y)`.
    ///
    /// With `bootstrap = true` each member sees a bootstrap resample of the
    /// data (bagging), increasing member diversity. Training is
    /// embarrassingly parallel and deterministic: member `i` trains with
    /// seed `seed + i`.
    pub fn train(
        config: &MlpConfig,
        train_config: &TrainConfig,
        x: &Matrix,
        y: &Matrix,
        n_members: usize,
        bootstrap: bool,
        seed: u64,
    ) -> le_nn::Result<Self> {
        if n_members == 0 {
            return Err(le_nn::NnError::InvalidConfig(
                "ensemble needs at least one member".into(),
            ));
        }
        let members: le_nn::Result<Vec<Mlp>> =
            pool::par_map_index(n_members, |i| {
                let member_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
                let mut rng = Rng::new(member_seed);
                let (xi, yi) = if bootstrap {
                    let n = x.rows();
                    let idx: Vec<usize> = (0..n).map(|_| rng.below(n)).collect();
                    (x.gather_rows(&idx), y.gather_rows(&idx))
                } else {
                    (x.clone(), y.clone())
                };
                let mut model = Mlp::new(config.clone(), &mut rng)?;
                let trainer = Trainer::new(TrainConfig {
                    seed: member_seed ^ 0xABCD,
                    ..train_config.clone()
                });
                trainer.fit(&mut model, &xi, &yi)?;
                Ok(model)
            })
            .into_iter()
            .collect();
        Ok(Self { members: members? })
    }

    /// Wrap pre-trained members (used by tests and custom pipelines).
    pub fn from_members(members: Vec<Mlp>) -> Self {
        assert!(!members.is_empty(), "ensemble needs members");
        Self { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ensemble has no members (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Access the members.
    pub fn members(&self) -> &[Mlp] {
        &self.members
    }

    /// Ensemble mean/std over a whole batch.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<Prediction> {
        let out_dim = self.members[0].out_dim();
        let n = self.members.len() as f64;
        let preds: Vec<Matrix> = self
            .members
            .iter()
            .map(|m| m.predict(x).expect("shape checked by caller")) // lint:allow(no-panic): ensemble entry validates the shape
            .collect();
        (0..x.rows())
            .map(|r| {
                let mut mean = vec![0.0; out_dim];
                for p in &preds {
                    for (m, &v) in mean.iter_mut().zip(p.row(r).iter()) {
                        *m += v;
                    }
                }
                for m in &mut mean {
                    *m /= n;
                }
                let mut std = vec![0.0; out_dim];
                if self.members.len() > 1 {
                    for p in &preds {
                        for ((s, &v), &m) in std.iter_mut().zip(p.row(r).iter()).zip(mean.iter()) {
                            *s += (v - m) * (v - m);
                        }
                    }
                    for s in &mut std {
                        *s = (*s / (n - 1.0)).sqrt();
                    }
                }
                Prediction { mean, std }
            })
            .collect()
    }
}

impl UncertainModel for DeepEnsemble {
    fn predict_with_uncertainty(&mut self, x: &[f64]) -> Prediction {
        let xm = Matrix::from_vec(1, x.len(), x.to_vec()).expect("1-row input"); // lint:allow(no-panic): 1-row matrix from a slice always succeeds
        self.predict_batch(&xm).remove(0)
    }

    fn predict_point(&self, x: &[f64]) -> Vec<f64> {
        let xm = Matrix::from_vec(1, x.len(), x.to_vec()).expect("1-row input"); // lint:allow(no-panic): 1-row matrix from a slice always succeeds
        self.predict_batch(&xm).remove(0).mean
    }

    fn out_dim(&self) -> usize {
        self.members[0].out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_nn::Activation;

    fn dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = Rng::new(seed);
        let mut x = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let v = rng.uniform_in(-1.0, 1.0);
            x.set(i, 0, v);
            y.set(i, 0, v * v);
        }
        (x, y)
    }

    fn quick_config() -> (MlpConfig, TrainConfig) {
        (
            MlpConfig {
                layers: vec![1, 16, 1],
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Identity,
                dropout: 0.0,
            },
            TrainConfig {
                epochs: 80,
                patience: None,
                validation_fraction: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn ensemble_learns_and_members_differ() {
        let (x, y) = dataset(256, 31);
        let (mc, tc) = quick_config();
        let ens = DeepEnsemble::train(&mc, &tc, &x, &y, 4, false, 100).unwrap();
        assert_eq!(ens.len(), 4);
        // Accurate in-distribution.
        let p = ens.predict_batch(&Matrix::from_rows(&[&[0.5]]));
        assert!((p[0].mean[0] - 0.25).abs() < 0.1, "mean {}", p[0].mean[0]);
        // Members are genuinely different networks.
        let xm = Matrix::from_rows(&[&[0.5]]);
        let outs: Vec<f64> = ens
            .members()
            .iter()
            .map(|m| m.predict(&xm).unwrap().get(0, 0))
            .collect();
        assert!(
            outs.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
            "members should not be identical"
        );
    }

    #[test]
    fn extrapolation_uncertainty_exceeds_interpolation() {
        let (x, y) = dataset(256, 32);
        let (mc, tc) = quick_config();
        let ens = DeepEnsemble::train(&mc, &tc, &x, &y, 5, true, 200).unwrap();
        let p = ens.predict_batch(&Matrix::from_rows(&[&[0.0], &[5.0]]));
        assert!(
            p[1].std[0] > p[0].std[0],
            "extrapolation std {} should exceed in-domain std {}",
            p[1].std[0],
            p[0].std[0]
        );
    }

    #[test]
    fn single_member_has_zero_std() {
        let (x, y) = dataset(64, 33);
        let (mc, tc) = quick_config();
        let ens = DeepEnsemble::train(&mc, &tc, &x, &y, 1, false, 300).unwrap();
        let p = ens.predict_batch(&Matrix::from_rows(&[&[0.3]]));
        assert_eq!(p[0].std[0], 0.0);
    }

    #[test]
    fn zero_members_rejected() {
        let (x, y) = dataset(16, 34);
        let (mc, tc) = quick_config();
        assert!(DeepEnsemble::train(&mc, &tc, &x, &y, 0, false, 1).is_err());
    }

    #[test]
    fn training_is_deterministic_across_invocations() {
        let (x, y) = dataset(64, 35);
        let (mc, tc) = quick_config();
        let a = DeepEnsemble::train(&mc, &tc, &x, &y, 3, true, 42).unwrap();
        let b = DeepEnsemble::train(&mc, &tc, &x, &y, 3, true, 42).unwrap();
        let xm = Matrix::from_rows(&[&[0.7]]);
        let pa = a.predict_batch(&xm);
        let pb = b.predict_batch(&xm);
        assert_eq!(pa[0].mean, pb[0].mean, "parallel training must be deterministic");
        assert_eq!(pa[0].std, pb[0].std);
    }

    #[test]
    fn uncertain_model_trait_consistency() {
        let (x, y) = dataset(64, 36);
        let (mc, tc) = quick_config();
        let mut ens = DeepEnsemble::train(&mc, &tc, &x, &y, 3, false, 7).unwrap();
        let p = ens.predict_with_uncertainty(&[0.2]);
        let point = ens.predict_point(&[0.2]);
        assert_eq!(p.mean, point, "ensemble point prediction is the mean");
        assert_eq!(ens.out_dim(), 1);
    }
}
