#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `le-uq` — uncertainty quantification for learned surrogates (§III-B).
//!
//! A learned surrogate must report not just the result of a simulation but
//! *the uncertainty of the prediction*, because the hybrid engine serves a
//! prediction only when it is "valid enough to be used". This crate provides
//! the two UQ families the paper discusses:
//!
//! * [`mc_dropout`] — dropout re-interpreted as an ensemble over thinned
//!   networks (Gal & Ghahramani, paper ref \[43\]): repeated stochastic
//!   forward passes form a predictive distribution.
//! * [`ensemble`] — deep ensembles: independently initialized and trained
//!   networks whose spread estimates epistemic uncertainty. The paper's
//!   research issue 10 notes dropout UQ depends on the dropout rate and asks
//!   for more reliable alternatives; the ensemble is that alternative and
//!   the E11 ablation compares the two.
//! * [`calibration`] — reliability diagnostics: observed coverage of
//!   predicted intervals vs. nominal, and the calibration error summary.
//! * [`acquisition`] — uncertainty-driven sample selection for the active
//!   learning loop (E5): pick the candidate simulations where the surrogate
//!   is least certain.

pub mod acquisition;
pub mod calibration;
pub mod ensemble;
pub mod interval;
pub mod mc_dropout;

pub use acquisition::{select_batch, AcquisitionStrategy};
pub use calibration::{calibration_error, coverage, CalibrationReport};
pub use ensemble::DeepEnsemble;
pub use interval::{empirical_interval, normal_interval, Interval};
pub use mc_dropout::McDropout;

/// Typed errors from the UQ diagnostics.
///
/// `le-uq` sits below the engine crate in the dependency graph, so it
/// carries its own error type; `learning-everywhere` maps it into
/// `LeError` at the boundary (the staleness detector does exactly that).
#[derive(Debug, Clone, PartialEq)]
pub enum UqError {
    /// The prediction set was empty — no coverage is defined.
    EmptySet,
    /// Predictions and targets have different lengths.
    LengthMismatch {
        /// Number of predictions supplied.
        preds: usize,
        /// Number of targets supplied.
        targets: usize,
    },
    /// The requested output dimension is outside some prediction or
    /// target vector.
    DimOutOfRange {
        /// The requested output dimension.
        dim: usize,
        /// The smallest output width seen across predictions/targets.
        width: usize,
    },
    /// The nominal coverage level must lie strictly inside (0, 1).
    BadNominal(f64),
}

impl std::fmt::Display for UqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UqError::EmptySet => write!(f, "coverage of an empty prediction set"),
            UqError::LengthMismatch { preds, targets } => {
                write!(f, "{preds} predictions vs {targets} targets")
            }
            UqError::DimOutOfRange { dim, width } => {
                write!(f, "output dim {dim} out of range (width {width})")
            }
            UqError::BadNominal(q) => write!(f, "nominal coverage {q} not in (0, 1)"),
        }
    }
}

impl std::error::Error for UqError {}

/// A predictive distribution summary for one input: per-output mean and
/// standard deviation.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predictive mean, one entry per model output.
    pub mean: Vec<f64>,
    /// Predictive standard deviation, one entry per model output.
    pub std: Vec<f64>,
}

impl Prediction {
    /// Largest per-output standard deviation — the scalar the hybrid engine
    /// gates on.
    pub fn max_std(&self) -> f64 {
        self.std.iter().fold(0.0f64, |m, &s| m.max(s))
    }

    /// Mean standard deviation across outputs.
    pub fn mean_std(&self) -> f64 {
        if self.std.is_empty() {
            return 0.0;
        }
        self.std.iter().sum::<f64>() / self.std.len() as f64
    }

    /// Central interval `mean ± z * std` for each output.
    pub fn interval(&self, z: f64) -> Vec<(f64, f64)> {
        self.mean
            .iter()
            .zip(self.std.iter())
            .map(|(&m, &s)| (m - z * s, m + z * s))
            .collect()
    }
}

/// Common interface over MC-dropout and deep-ensemble predictors, so the
/// hybrid engine and the acquisition functions are generic over the UQ
/// method.
pub trait UncertainModel {
    /// Predict mean and standard deviation for a single (scaled) input.
    fn predict_with_uncertainty(&mut self, x: &[f64]) -> Prediction;

    /// Deterministic point prediction (no UQ overhead).
    fn predict_point(&self, x: &[f64]) -> Vec<f64>;

    /// Output dimensionality.
    fn out_dim(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_interval_and_summaries() {
        let p = Prediction {
            mean: vec![1.0, -2.0],
            std: vec![0.5, 2.0],
        };
        assert_eq!(p.max_std(), 2.0);
        assert!((p.mean_std() - 1.25).abs() < 1e-12);
        let iv = p.interval(2.0);
        assert_eq!(iv[0], (0.0, 2.0));
        assert_eq!(iv[1], (-6.0, 2.0));
    }

    #[test]
    fn empty_prediction_mean_std_is_zero() {
        let p = Prediction {
            mean: vec![],
            std: vec![],
        };
        assert_eq!(p.mean_std(), 0.0);
        assert_eq!(p.max_std(), 0.0);
    }
}
