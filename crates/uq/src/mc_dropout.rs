//! MC-dropout: "a set of differently thinned versions of the network can
//! form a sample distribution of predictions to be used as a UQ metric"
//! (§III-B). A trained dropout network is sampled `n_samples` times with
//! dropout *kept on*; the sample mean/std form the predictive distribution.
//!
//! All stochastic evaluation rides the fused batch engine
//! ([`le_nn::BatchScratch`]): the `n_samples` passes for every queried row
//! run as one `(K·B, ·)` GEMM batch, and dropout masks come from stateless
//! per-row substreams (`Rng::substream(seed, ordinal)`), so predicting a
//! batch of B rows is bit-identical to B single-row predictions — see the
//! determinism contract in `le_nn::batch`.

use le_linalg::Matrix;
use le_nn::{BatchScratch, Mlp};

use crate::{Prediction, UncertainModel};

/// MC-dropout wrapper around a trained [`Mlp`] with a nonzero dropout rate.
#[derive(Debug, Clone)]
pub struct McDropout {
    model: Mlp,
    /// Number of stochastic forward passes per prediction.
    pub n_samples: usize,
    /// Stateless mask-stream seed: row `i` of consult `ordinal` draws from
    /// `Rng::substream(mask_seed, ordinal + i)`.
    mask_seed: u64,
    /// Next unconsumed substream ordinal; a prediction over B rows
    /// consumes B ordinals.
    ordinal: u64,
    scratch: BatchScratch,
}

impl McDropout {
    /// Wrap a trained model. `n_samples` is clamped to at least 2 (a std
    /// needs two points); 30–100 is typical.
    pub fn new(model: Mlp, n_samples: usize, seed: u64) -> Self {
        let scratch = BatchScratch::new(&model);
        Self {
            model,
            n_samples: n_samples.max(2),
            mask_seed: seed,
            ordinal: 0,
            scratch,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// Replace the wrapped model (after retraining in the active loop).
    /// Rebuilds the batch engine's weight snapshot.
    pub fn set_model(&mut self, model: Mlp) {
        self.scratch = BatchScratch::new(&model);
        self.model = model;
    }

    /// Raw MC samples for one input: an `(n_samples, out_dim)` matrix.
    /// Consumes one mask-stream ordinal.
    pub fn sample(&mut self, x: &[f64]) -> Matrix {
        let out_dim = self.model.out_dim();
        let mut samples = Matrix::zeros(self.n_samples, out_dim);
        self.scratch
            .mc_forward_into(x, 1, self.n_samples, self.mask_seed, self.ordinal, samples.as_mut_slice())
            .expect("shape checked by caller"); // lint:allow(no-panic): public entry validates the shape
        self.ordinal = self.ordinal.wrapping_add(1);
        samples
    }

    /// Predict mean/std for a whole batch at once (rows of `x`) with one
    /// fused evaluation; row `r` consumes ordinal `ordinal + r`, so the
    /// result is bit-identical to `x.rows()` single-row predictions.
    pub fn predict_batch(&mut self, x: &Matrix) -> Vec<Prediction> {
        let rows = x.rows();
        let out_dim = self.model.out_dim();
        let mut mean = vec![0.0; rows * out_dim];
        let mut std = vec![0.0; rows * out_dim];
        self.scratch
            .mc_predict_into(
                x.as_slice(),
                rows,
                self.n_samples,
                self.mask_seed,
                self.ordinal,
                &mut mean,
                &mut std,
            )
            .expect("shape checked by caller"); // lint:allow(no-panic): public entry validates the shape
        self.ordinal = self.ordinal.wrapping_add(rows as u64);
        (0..rows)
            .map(|r| Prediction {
                mean: mean[r * out_dim..(r + 1) * out_dim].to_vec(),
                std: std[r * out_dim..(r + 1) * out_dim].to_vec(),
            })
            .collect()
    }
}

impl UncertainModel for McDropout {
    fn predict_with_uncertainty(&mut self, x: &[f64]) -> Prediction {
        let out_dim = self.model.out_dim();
        let mut mean = vec![0.0; out_dim];
        let mut std = vec![0.0; out_dim];
        self.scratch
            .mc_predict_into(x, 1, self.n_samples, self.mask_seed, self.ordinal, &mut mean, &mut std)
            .expect("shape checked by caller"); // lint:allow(no-panic): public entry validates the shape
        self.ordinal = self.ordinal.wrapping_add(1);
        Prediction { mean, std }
    }

    fn predict_point(&self, x: &[f64]) -> Vec<f64> {
        self.model.predict_one(x).expect("shape checked by caller") // lint:allow(no-panic): public entry validates the shape
    }

    fn out_dim(&self) -> usize {
        self.model.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;
    use le_nn::{MlpConfig, TrainConfig, Trainer};

    fn trained_dropout_net(seed: u64, dropout: f64) -> Mlp {
        // Train y = x0 + x1 on [-1,1]^2.
        let mut rng = Rng::new(seed);
        let n = 256;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let a = rng.uniform_in(-1.0, 1.0);
            let b = rng.uniform_in(-1.0, 1.0);
            x.set(i, 0, a);
            x.set(i, 1, b);
            y.set(i, 0, a + b);
        }
        let mut model = Mlp::new(
            MlpConfig::regression_with_dropout(&[2, 32, 32, 1], dropout),
            &mut rng,
        )
        .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 150,
            ..Default::default()
        });
        trainer.fit(&mut model, &x, &y).unwrap();
        model
    }

    #[test]
    fn mean_tracks_point_prediction() {
        let model = trained_dropout_net(21, 0.1);
        let mut mc = McDropout::new(model, 200, 7);
        let x = [0.3, -0.2];
        let p = mc.predict_with_uncertainty(&x);
        let point = mc.predict_point(&x);
        // MC mean should be close to the deterministic prediction.
        assert!(
            (p.mean[0] - point[0]).abs() < 3.0 * p.std[0] / (200f64).sqrt() + 0.05,
            "mc mean {} vs point {}",
            p.mean[0],
            point[0]
        );
    }

    #[test]
    fn nonzero_dropout_gives_nonzero_std() {
        let model = trained_dropout_net(22, 0.2);
        let mut mc = McDropout::new(model, 50, 8);
        let p = mc.predict_with_uncertainty(&[0.1, 0.1]);
        assert!(p.std[0] > 0.0, "dropout must induce spread");
    }

    #[test]
    fn zero_dropout_gives_zero_std() {
        let model = trained_dropout_net(23, 0.0);
        let mut mc = McDropout::new(model, 20, 9);
        let p = mc.predict_with_uncertainty(&[0.1, 0.1]);
        assert!(p.std[0] < 1e-12, "no dropout = deterministic net, got {}", p.std[0]);
    }

    #[test]
    fn extrapolation_is_more_uncertain_than_interpolation() {
        // Trained on [-1,1]^2; probe inside vs far outside.
        let model = trained_dropout_net(24, 0.25);
        let mut mc = McDropout::new(model, 200, 10);
        let inside = mc.predict_with_uncertainty(&[0.0, 0.0]).std[0];
        let outside = mc.predict_with_uncertainty(&[4.0, 4.0]).std[0];
        assert!(
            outside > inside,
            "extrapolation std {outside} should exceed interpolation std {inside}"
        );
    }

    #[test]
    fn batch_prediction_is_bitwise_identical_to_singles() {
        // The fused path's contract: same seed, same ordinals ⇒ a batch of
        // B is *bit-identical* to B sequential single predictions (the old
        // statistical-tolerance check is obsolete).
        let model = trained_dropout_net(25, 0.15);
        let mut mc_single = McDropout::new(model.clone(), 64, 11);
        let mut mc_batch = McDropout::new(model, 64, 11);
        let x = Matrix::from_rows(&[&[0.2, 0.4], &[-0.5, 0.1], &[0.9, -0.9]]);
        let batch = mc_batch.predict_batch(&x);
        assert_eq!(batch.len(), 3);
        for (r, want) in batch.iter().enumerate() {
            let got = mc_single.predict_with_uncertainty(x.row(r));
            assert_eq!(got.mean, want.mean, "row {r} mean");
            assert_eq!(got.std, want.std, "row {r} std");
        }
    }

    #[test]
    fn repeated_queries_use_fresh_ordinals() {
        let model = trained_dropout_net(28, 0.2);
        let mut mc = McDropout::new(model, 30, 14);
        let a = mc.predict_with_uncertainty(&[0.1, 0.1]);
        let b = mc.predict_with_uncertainty(&[0.1, 0.1]);
        assert_ne!(a.mean, b.mean, "consecutive consults draw distinct mask streams");
    }

    #[test]
    fn n_samples_clamped_to_two() {
        let model = trained_dropout_net(26, 0.1);
        let mc = McDropout::new(model, 0, 12);
        assert_eq!(mc.n_samples, 2);
    }

    #[test]
    fn sample_matrix_shape() {
        let model = trained_dropout_net(27, 0.1);
        let mut mc = McDropout::new(model, 17, 13);
        let s = mc.sample(&[0.0, 0.0]);
        assert_eq!(s.shape(), (17, 1));
    }
}
