//! MC-dropout: "a set of differently thinned versions of the network can
//! form a sample distribution of predictions to be used as a UQ metric"
//! (§III-B). A trained dropout network is sampled `n_samples` times with
//! dropout *kept on*; the sample mean/std form the predictive distribution.

use le_linalg::{Matrix, Rng};
use le_nn::Mlp;

use crate::{Prediction, UncertainModel};

/// MC-dropout wrapper around a trained [`Mlp`] with a nonzero dropout rate.
#[derive(Debug, Clone)]
pub struct McDropout {
    model: Mlp,
    /// Number of stochastic forward passes per prediction.
    pub n_samples: usize,
    rng: Rng,
}

impl McDropout {
    /// Wrap a trained model. `n_samples` is clamped to at least 2 (a std
    /// needs two points); 30–100 is typical.
    pub fn new(model: Mlp, n_samples: usize, seed: u64) -> Self {
        Self {
            model,
            n_samples: n_samples.max(2),
            rng: Rng::new(seed),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// Replace the wrapped model (after retraining in the active loop).
    pub fn set_model(&mut self, model: Mlp) {
        self.model = model;
    }

    /// Raw MC samples for one input: an `(n_samples, out_dim)` matrix.
    pub fn sample(&mut self, x: &[f64]) -> Matrix {
        let xm = Matrix::from_vec(1, x.len(), x.to_vec()).expect("1-row input"); // lint:allow(no-panic): 1-row matrix from a slice always succeeds
        let out_dim = self.model.out_dim();
        let mut samples = Matrix::zeros(self.n_samples, out_dim);
        for i in 0..self.n_samples {
            let y = self
                .model
                .predict_mc(&xm, &mut self.rng)
                .expect("shape checked by caller"); // lint:allow(no-panic): public entry validates the shape
            samples.row_mut(i).copy_from_slice(y.row(0));
        }
        samples
    }

    /// Predict mean/std for a whole batch at once (rows of `x`).
    pub fn predict_batch(&mut self, x: &Matrix) -> Vec<Prediction> {
        let out_dim = self.model.out_dim();
        let mut sums = vec![vec![0.0; out_dim]; x.rows()];
        let mut sq_sums = vec![vec![0.0; out_dim]; x.rows()];
        for _ in 0..self.n_samples {
            let y = self
                .model
                .predict_mc(x, &mut self.rng)
                .expect("shape checked by caller"); // lint:allow(no-panic): public entry validates the shape
            for r in 0..x.rows() {
                for (c, &v) in y.row(r).iter().enumerate() {
                    sums[r][c] += v;
                    sq_sums[r][c] += v * v;
                }
            }
        }
        let n = self.n_samples as f64;
        (0..x.rows())
            .map(|r| {
                let mean: Vec<f64> = sums[r].iter().map(|&s| s / n).collect();
                let std: Vec<f64> = sq_sums[r]
                    .iter()
                    .zip(mean.iter())
                    // Sample variance with Bessel correction, floored at 0
                    // against rounding.
                    .map(|(&sq, &m)| (((sq - n * m * m) / (n - 1.0)).max(0.0)).sqrt())
                    .collect();
                Prediction { mean, std }
            })
            .collect()
    }
}

impl UncertainModel for McDropout {
    fn predict_with_uncertainty(&mut self, x: &[f64]) -> Prediction {
        let samples = self.sample(x);
        let n = samples.rows() as f64;
        let out_dim = samples.cols();
        let mut mean = vec![0.0; out_dim];
        for r in 0..samples.rows() {
            for (m, &v) in mean.iter_mut().zip(samples.row(r).iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; out_dim];
        for r in 0..samples.rows() {
            for ((s, &v), &m) in std.iter_mut().zip(samples.row(r).iter()).zip(mean.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / (n - 1.0)).sqrt();
        }
        Prediction { mean, std }
    }

    fn predict_point(&self, x: &[f64]) -> Vec<f64> {
        self.model.predict_one(x).expect("shape checked by caller") // lint:allow(no-panic): public entry validates the shape
    }

    fn out_dim(&self) -> usize {
        self.model.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_nn::{MlpConfig, TrainConfig, Trainer};

    fn trained_dropout_net(seed: u64, dropout: f64) -> Mlp {
        // Train y = x0 + x1 on [-1,1]^2.
        let mut rng = Rng::new(seed);
        let n = 256;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let a = rng.uniform_in(-1.0, 1.0);
            let b = rng.uniform_in(-1.0, 1.0);
            x.set(i, 0, a);
            x.set(i, 1, b);
            y.set(i, 0, a + b);
        }
        let mut model = Mlp::new(
            MlpConfig::regression_with_dropout(&[2, 32, 32, 1], dropout),
            &mut rng,
        )
        .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 150,
            ..Default::default()
        });
        trainer.fit(&mut model, &x, &y).unwrap();
        model
    }

    #[test]
    fn mean_tracks_point_prediction() {
        let model = trained_dropout_net(21, 0.1);
        let mut mc = McDropout::new(model, 200, 7);
        let x = [0.3, -0.2];
        let p = mc.predict_with_uncertainty(&x);
        let point = mc.predict_point(&x);
        // MC mean should be close to the deterministic prediction.
        assert!(
            (p.mean[0] - point[0]).abs() < 3.0 * p.std[0] / (200f64).sqrt() + 0.05,
            "mc mean {} vs point {}",
            p.mean[0],
            point[0]
        );
    }

    #[test]
    fn nonzero_dropout_gives_nonzero_std() {
        let model = trained_dropout_net(22, 0.2);
        let mut mc = McDropout::new(model, 50, 8);
        let p = mc.predict_with_uncertainty(&[0.1, 0.1]);
        assert!(p.std[0] > 0.0, "dropout must induce spread");
    }

    #[test]
    fn zero_dropout_gives_zero_std() {
        let model = trained_dropout_net(23, 0.0);
        let mut mc = McDropout::new(model, 20, 9);
        let p = mc.predict_with_uncertainty(&[0.1, 0.1]);
        assert!(p.std[0] < 1e-12, "no dropout = deterministic net, got {}", p.std[0]);
    }

    #[test]
    fn extrapolation_is_more_uncertain_than_interpolation() {
        // Trained on [-1,1]^2; probe inside vs far outside.
        let model = trained_dropout_net(24, 0.25);
        let mut mc = McDropout::new(model, 200, 10);
        let inside = mc.predict_with_uncertainty(&[0.0, 0.0]).std[0];
        let outside = mc.predict_with_uncertainty(&[4.0, 4.0]).std[0];
        assert!(
            outside > inside,
            "extrapolation std {outside} should exceed interpolation std {inside}"
        );
    }

    #[test]
    fn batch_prediction_matches_single() {
        let model = trained_dropout_net(25, 0.15);
        // Use large sample counts; compare statistically.
        let mut mc_a = McDropout::new(model.clone(), 400, 11);
        let mut mc_b = McDropout::new(model, 400, 11);
        let x = Matrix::from_rows(&[&[0.2, 0.4], &[-0.5, 0.1]]);
        let batch = mc_b.predict_batch(&x);
        let single0 = mc_a.predict_with_uncertainty(&[0.2, 0.4]);
        assert!((batch[0].mean[0] - single0.mean[0]).abs() < 0.05);
        assert!((batch[0].std[0] - single0.std[0]).abs() < 0.03);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn n_samples_clamped_to_two() {
        let model = trained_dropout_net(26, 0.1);
        let mc = McDropout::new(model, 0, 12);
        assert_eq!(mc.n_samples, 2);
    }

    #[test]
    fn sample_matrix_shape() {
        let model = trained_dropout_net(27, 0.1);
        let mut mc = McDropout::new(model, 17, 13);
        let s = mc.sample(&[0.0, 0.0]);
        assert_eq!(s.shape(), (17, 1));
    }
}
