//! Prediction intervals: normal-theory and empirical (sample-quantile)
//! central intervals from MC samples, plus the width/coverage summary used
//! when choosing the hybrid engine's gate threshold.

use le_linalg::Matrix;

/// A central prediction interval for one output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Nominal coverage the interval was built for.
    pub nominal: f64,
}

impl Interval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a value falls inside (inclusive).
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// Normal-theory central interval from a mean and std: `mean ± z(q)·std`.
pub fn normal_interval(mean: f64, std: f64, nominal: f64) -> Interval {
    let z = z_for(nominal);
    Interval {
        lo: mean - z * std,
        hi: mean + z * std,
        nominal,
    }
}

/// Empirical central interval from raw MC samples of one output (a column
/// of the `(n_samples, out_dim)` matrix produced by
/// [`crate::McDropout::sample`]): the `(1±q)/2` sample quantiles.
pub fn empirical_interval(samples: &Matrix, output: usize, nominal: f64) -> Interval {
    assert!(samples.rows() >= 2, "need at least 2 MC samples");
    assert!(output < samples.cols());
    let mut col: Vec<f64> = (0..samples.rows()).map(|r| samples.get(r, output)).collect();
    col.sort_by(|a, b| a.total_cmp(b));
    let q_lo = (1.0 - nominal) / 2.0;
    let q_hi = 1.0 - q_lo;
    let pick = |q: f64| {
        let pos = q * (col.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        col[lo] * (1.0 - frac) + col[hi] * frac
    };
    Interval {
        lo: pick(q_lo),
        hi: pick(q_hi),
        nominal,
    }
}

/// z-score of the central normal interval with the given coverage
/// (Winitzki's inverse-erf approximation; ~2e-3 accuracy in z).
pub fn z_for(nominal: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&nominal));
    let p = 0.5 + nominal / 2.0;
    let x = 2.0 * p - 1.0;
    let a = 0.147;
    let ln_term = (1.0 - x * x).ln();
    let t1 = 2.0 / (std::f64::consts::PI * a) + ln_term / 2.0;
    let inv_erf = x.signum() * ((t1 * t1 - ln_term / a).sqrt() - t1).sqrt();
    std::f64::consts::SQRT_2 * inv_erf
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;

    #[test]
    fn normal_interval_symmetric_and_monotone_in_coverage() {
        let i68 = normal_interval(2.0, 1.0, 0.6827);
        assert!((i68.lo - 1.0).abs() < 0.03);
        assert!((i68.hi - 3.0).abs() < 0.03);
        let i95 = normal_interval(2.0, 1.0, 0.95);
        assert!(i95.width() > i68.width());
        assert!(i95.contains(2.0) && !i95.contains(6.0));
    }

    #[test]
    fn zero_std_degenerates_to_a_point() {
        let i = normal_interval(1.5, 0.0, 0.9);
        assert_eq!(i.lo, 1.5);
        assert_eq!(i.hi, 1.5);
        assert!(i.contains(1.5));
        assert!(!i.contains(1.5001));
    }

    #[test]
    fn empirical_interval_covers_gaussian_samples_correctly() {
        let mut rng = Rng::new(7);
        let n = 20_000;
        let mut m = Matrix::zeros(n, 1);
        for r in 0..n {
            m.set(r, 0, 3.0 + 2.0 * rng.gaussian());
        }
        let emp = empirical_interval(&m, 0, 0.9);
        let norm = normal_interval(3.0, 2.0, 0.9);
        assert!((emp.lo - norm.lo).abs() < 0.1, "{} vs {}", emp.lo, norm.lo);
        assert!((emp.hi - norm.hi).abs() < 0.1, "{} vs {}", emp.hi, norm.hi);
    }

    #[test]
    fn empirical_interval_on_skewed_samples_is_asymmetric() {
        // Exponential samples: the empirical interval must be asymmetric
        // about the mean while the normal one is symmetric — the reason to
        // prefer empirical intervals for non-Gaussian predictive
        // distributions.
        let mut rng = Rng::new(8);
        let n = 20_000;
        let mut m = Matrix::zeros(n, 1);
        let mut mean = 0.0;
        for r in 0..n {
            let v = rng.exponential(1.0);
            m.set(r, 0, v);
            mean += v;
        }
        mean /= n as f64;
        let emp = empirical_interval(&m, 0, 0.9);
        let below = mean - emp.lo;
        let above = emp.hi - mean;
        assert!(above > 1.5 * below, "skew: above {above}, below {below}");
    }

    #[test]
    fn z_for_known_values() {
        assert!((z_for(0.6827) - 1.0).abs() < 0.02);
        assert!((z_for(0.95) - 1.96).abs() < 0.03);
        assert!((z_for(0.99) - 2.576).abs() < 0.05);
    }
}
