//! Acquisition strategies for active learning (E5).
//!
//! The paper (§II-C2, ref [34]) highlights active learning that "reduced the
//! amount of required training data to 10% of the original model by
//! iteratively adding training data calculations for regions of chemical
//! space where the current ML model could not make good predictions". These
//! strategies decide *which* candidate simulations to run next.

use crate::UncertainModel;

/// How to score candidate inputs for acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquisitionStrategy {
    /// Highest predictive uncertainty first (max per-output std).
    MaxUncertainty,
    /// Uniform random selection — the baseline active learning must beat.
    Random,
}

/// Select `k` candidate indices from `candidates` according to `strategy`.
///
/// * `MaxUncertainty` scores every candidate with one UQ evaluation and
///   takes the top `k`.
/// * `Random` draws `k` distinct indices with the provided seed.
///
/// Returns indices into `candidates`, highest priority first.
pub fn select_batch<M: UncertainModel>(
    model: &mut M,
    candidates: &[Vec<f64>],
    k: usize,
    strategy: AcquisitionStrategy,
    seed: u64,
) -> Vec<usize> {
    let k = k.min(candidates.len());
    if k == 0 {
        return Vec::new();
    }
    match strategy {
        AcquisitionStrategy::Random => {
            let mut rng = le_linalg::Rng::new(seed);
            rng.sample_indices(candidates.len(), k)
        }
        AcquisitionStrategy::MaxUncertainty => {
            let mut scored: Vec<(usize, f64)> = candidates
                .iter()
                .enumerate()
                .map(|(i, x)| (i, model.predict_with_uncertainty(x).max_std()))
                .collect();
            // Descending by uncertainty; ties broken by index for
            // determinism.
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            scored.into_iter().take(k).map(|(i, _)| i).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prediction;

    /// Deterministic fake: uncertainty equals |x[0]|.
    struct FakeModel;

    impl UncertainModel for FakeModel {
        fn predict_with_uncertainty(&mut self, x: &[f64]) -> Prediction {
            Prediction {
                mean: vec![0.0],
                std: vec![x[0].abs()],
            }
        }
        fn predict_point(&self, _x: &[f64]) -> Vec<f64> {
            vec![0.0]
        }
        fn out_dim(&self) -> usize {
            1
        }
    }

    #[test]
    fn max_uncertainty_picks_most_uncertain() {
        let candidates = vec![vec![0.1], vec![5.0], vec![2.0], vec![0.5]];
        let picked = select_batch(
            &mut FakeModel,
            &candidates,
            2,
            AcquisitionStrategy::MaxUncertainty,
            0,
        );
        assert_eq!(picked, vec![1, 2]);
    }

    #[test]
    fn random_returns_distinct_valid_indices() {
        let candidates: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let picked = select_batch(
            &mut FakeModel,
            &candidates,
            8,
            AcquisitionStrategy::Random,
            42,
        );
        assert_eq!(picked.len(), 8);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(picked.iter().all(|&i| i < 20));
    }

    #[test]
    fn k_larger_than_pool_is_clamped() {
        let candidates = vec![vec![1.0], vec![2.0]];
        for strat in [
            AcquisitionStrategy::MaxUncertainty,
            AcquisitionStrategy::Random,
        ] {
            let picked = select_batch(&mut FakeModel, &candidates, 10, strat, 1);
            assert_eq!(picked.len(), 2);
        }
    }

    #[test]
    fn empty_pool_or_zero_k() {
        assert!(select_batch(
            &mut FakeModel,
            &[],
            3,
            AcquisitionStrategy::MaxUncertainty,
            0
        )
        .is_empty());
        let candidates = vec![vec![1.0]];
        assert!(
            select_batch(&mut FakeModel, &candidates, 0, AcquisitionStrategy::Random, 0).is_empty()
        );
    }

    #[test]
    fn ties_broken_by_index_for_determinism() {
        let candidates = vec![vec![1.0], vec![-1.0], vec![1.0]];
        let picked = select_batch(
            &mut FakeModel,
            &candidates,
            3,
            AcquisitionStrategy::MaxUncertainty,
            0,
        );
        assert_eq!(picked, vec![0, 1, 2]);
    }
}
