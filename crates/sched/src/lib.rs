#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `le-sched` — a discrete-event scheduler simulator for the heterogeneous
//! workloads MLaroundHPC creates (research issues 7–8 of the paper).
//!
//! "The different characters of surrogate and real executions produce
//! system challenges as surrogate execution is much faster … the ML learnt
//! result can be huge factors (10⁵ in our initial example) faster than
//! simulated answers. … One can address by load balancing the unlearnt and
//! learnt separately."
//!
//! The simulator models a pool of identical workers served tasks of two
//! classes — `Learnt` (surrogate lookups, ~10⁵× shorter) and `Unlearnt`
//! (full simulations) — under several scheduling policies, and reports the
//! queueing metrics that make the paper's point: with a single FIFO queue,
//! tiny learnt tasks suffer head-of-line blocking behind long simulations;
//! separating the classes collapses learnt-task latency without hurting
//! simulation throughput.
//!
//! * [`task`] — task/workload model with a ramping learnt fraction (the
//!   paper: "the relative values will even vary over execution time of the
//!   application, as the amount of data generated as a ratio of training
//!   data will vary").
//! * [`des`] — the event-driven engine, with per-task logical-time
//!   deadline budgets, timeouts, and bounded re-dispatch of stragglers
//!   ([`des::simulate_with`]) for the supervision layer.
//! * [`policy`] — Single global FIFO, dedicated split pools, shortest-queue
//!   dispatch, and work stealing.
//! * [`metrics`] — per-class latency/wait statistics, utilization,
//!   makespan.

pub mod des;
pub mod metrics;
pub mod policy;
pub mod task;

pub use des::{simulate, simulate_with, SimOptions, Stall};
pub use metrics::Metrics;
pub use policy::Policy;
pub use task::{Task, TaskClass, Workload, WorkloadConfig};

/// Errors from the scheduler simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// Invalid configuration.
    InvalidConfig(String),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, SchedError>;
