//! Queueing metrics computed from completion records.

use crate::task::TaskClass;

/// One finished task.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Class of the task.
    pub class: TaskClass,
    /// Arrival time.
    pub arrival: f64,
    /// Service start time.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
}

impl Completion {
    /// Queueing delay (start − arrival).
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }

    /// Sojourn time (finish − arrival).
    pub fn latency(&self) -> f64 {
        self.finish - self.arrival
    }
}

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// All completion records.
    pub completions: Vec<Completion>,
    /// Completed task count.
    pub n_completed: usize,
    /// Time the last event fired.
    pub makespan: f64,
    /// Sum of worker busy times.
    pub total_busy: f64,
    /// Mean worker utilization over the makespan.
    pub utilization: f64,
}

/// Bucket upper bounds (simulated time units) for the per-class latency
/// histograms exported through `le-obs`. Latencies are simulated-time
/// quantities, so the bucket counts are fully deterministic.
const LATENCY_BOUNDS: [f64; 7] = [1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0];

impl Metrics {
    /// Build from raw records. As a side effect, every completion's sojourn
    /// time is recorded into the global `le-obs` histograms
    /// `sched.latency.learnt` / `sched.latency.unlearnt`, and
    /// `sched.completions` is incremented per task.
    pub fn from_completions(completions: Vec<Completion>, busy: &[f64], makespan: f64) -> Self {
        let learnt = le_obs::global().histogram("sched.latency.learnt", &LATENCY_BOUNDS);
        let unlearnt = le_obs::global().histogram("sched.latency.unlearnt", &LATENCY_BOUNDS);
        let completed = le_obs::global().counter("sched.completions");
        for c in &completions {
            match c.class {
                TaskClass::Learnt => learnt.record(c.latency()),
                TaskClass::Unlearnt => unlearnt.record(c.latency()),
            }
            completed.inc();
        }
        let total_busy: f64 = busy.iter().sum();
        let utilization = if makespan > 0.0 && !busy.is_empty() {
            total_busy / (makespan * busy.len() as f64)
        } else {
            0.0
        };
        Self {
            n_completed: completions.len(),
            completions,
            makespan,
            total_busy,
            utilization,
        }
    }

    /// Mean sojourn time of a class (`None` if the class never appeared).
    pub fn mean_latency(&self, class: TaskClass) -> Option<f64> {
        let v: Vec<f64> = self
            .completions
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.latency())
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Mean queueing delay of a class.
    pub fn mean_wait(&self, class: TaskClass) -> Option<f64> {
        let v: Vec<f64> = self
            .completions
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.wait())
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Latency quantile of a class (`q` in [0, 1]).
    pub fn latency_quantile(&self, class: TaskClass, q: f64) -> Option<f64> {
        let mut v: Vec<f64> = self
            .completions
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.latency())
            .collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let pos = (q.clamp(0.0, 1.0) * (v.len() - 1) as f64).round() as usize;
        Some(v[pos])
    }

    /// Throughput in tasks per unit time.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.n_completed as f64 / self.makespan
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Metrics {
        let completions = vec![
            Completion {
                class: TaskClass::Learnt,
                arrival: 0.0,
                start: 1.0,
                finish: 1.1,
            },
            Completion {
                class: TaskClass::Unlearnt,
                arrival: 0.0,
                start: 0.0,
                finish: 2.0,
            },
            Completion {
                class: TaskClass::Learnt,
                arrival: 1.0,
                start: 1.2,
                finish: 1.4,
            },
        ];
        Metrics::from_completions(completions, &[2.0, 0.3], 2.0)
    }

    #[test]
    fn latency_and_wait() {
        let m = sample_metrics();
        // Learnt latencies: 1.1, 0.4 -> mean 0.75.
        assert!((m.mean_latency(TaskClass::Learnt).unwrap() - 0.75).abs() < 1e-12);
        // Learnt waits: 1.0, 0.2 -> mean 0.6.
        assert!((m.mean_wait(TaskClass::Learnt).unwrap() - 0.6).abs() < 1e-12);
        assert!((m.mean_latency(TaskClass::Unlearnt).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let m = sample_metrics();
        assert!((m.latency_quantile(TaskClass::Learnt, 0.0).unwrap() - 0.4).abs() < 1e-12);
        assert!((m.latency_quantile(TaskClass::Learnt, 1.0).unwrap() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_throughput() {
        let m = sample_metrics();
        // busy 2.3 over 2 workers × 2.0 = 0.575.
        assert!((m.utilization - 0.575).abs() < 1e-12);
        assert!((m.throughput() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn missing_class_is_none() {
        let m = Metrics::from_completions(vec![], &[0.0], 0.0);
        assert!(m.mean_latency(TaskClass::Learnt).is_none());
        assert!(m.latency_quantile(TaskClass::Unlearnt, 0.5).is_none());
        assert_eq!(m.throughput(), 0.0);
    }
}
