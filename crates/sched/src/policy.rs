//! Scheduling policies for the mixed learnt/unlearnt workload.

use crate::{Result, SchedError};

/// How tasks are routed to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// One global FIFO queue; any idle worker takes the head task. Learnt
    /// tasks suffer head-of-line blocking behind simulations.
    SingleQueue,
    /// The pool is split: `learnt_workers` serve only learnt tasks, the
    /// rest serve only unlearnt tasks — the paper's "load balancing the
    /// unlearnt and learnt separately".
    DedicatedSplit {
        /// Workers reserved for learnt tasks.
        learnt_workers: usize,
    },
    /// Per-worker FIFO queues; arrivals join the shortest queue (by total
    /// queued service demand).
    ShortestQueue,
    /// Per-worker FIFO queues with random placement; idle workers steal
    /// from the most loaded queue.
    WorkStealing,
    /// One shared priority queue where learnt (short) tasks preempt the
    /// *queue order* (not running tasks): shortest-class-first.
    LearntPriority,
}

impl Policy {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::SingleQueue => "single-queue",
            Policy::DedicatedSplit { .. } => "dedicated-split",
            Policy::ShortestQueue => "shortest-queue",
            Policy::WorkStealing => "work-stealing",
            Policy::LearntPriority => "learnt-priority",
        }
    }

    /// Validate against the worker count.
    pub fn validate(&self, n_workers: usize) -> Result<()> {
        if n_workers == 0 {
            return Err(SchedError::InvalidConfig("need at least one worker".into()));
        }
        if let Policy::DedicatedSplit { learnt_workers } = self {
            if *learnt_workers == 0 || *learnt_workers >= n_workers {
                return Err(SchedError::InvalidConfig(format!(
                    "dedicated split needs 1..{} learnt workers, got {}",
                    n_workers, learnt_workers
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_distinct() {
        let all = [
            Policy::SingleQueue,
            Policy::DedicatedSplit { learnt_workers: 1 },
            Policy::ShortestQueue,
            Policy::WorkStealing,
            Policy::LearntPriority,
        ];
        let names: std::collections::HashSet<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn validation() {
        assert!(Policy::SingleQueue.validate(0).is_err());
        assert!(Policy::SingleQueue.validate(1).is_ok());
        assert!(Policy::DedicatedSplit { learnt_workers: 0 }.validate(4).is_err());
        assert!(Policy::DedicatedSplit { learnt_workers: 4 }.validate(4).is_err());
        assert!(Policy::DedicatedSplit { learnt_workers: 1 }.validate(4).is_ok());
    }
}
