//! The discrete-event engine: a single clock, arrival and completion
//! events, and policy-specific queue management.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::metrics::{Completion, Metrics};
use crate::policy::Policy;
use crate::task::{TaskClass, Workload};
use crate::Result;

/// Event in the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival(usize),
    Completion { worker: usize, task: usize },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison; ties broken by sequence number
        // for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Per-worker state.
#[derive(Debug, Clone, Default)]
struct Worker {
    busy_until: f64,
    busy_time: f64,
    queue: VecDeque<usize>,
    /// Total queued service demand (for shortest-queue routing).
    queued_service: f64,
}

/// Simulate the workload under the policy on `n_workers` workers.
pub fn simulate(workload: &Workload, n_workers: usize, policy: Policy) -> Result<Metrics> {
    policy.validate(n_workers)?;
    // One causal trace span per DES run; task lifecycle instants below
    // attach to it, so a whole scheduling experiment reads as one request.
    let _tr = le_obs::trace_span!("sched.simulate");
    let tasks = &workload.tasks;
    let mut events = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, t) in tasks.iter().enumerate() {
        events.push(Event {
            time: t.arrival,
            seq,
            kind: EventKind::Arrival(i),
        });
        seq += 1;
    }
    let mut workers = vec![Worker::default(); n_workers];
    let mut worker_free = vec![true; n_workers];
    // Global queues (policy-dependent use).
    let mut global_fifo: VecDeque<usize> = VecDeque::new();
    let mut learnt_fifo: VecDeque<usize> = VecDeque::new();
    let mut unlearnt_fifo: VecDeque<usize> = VecDeque::new();
    let mut completions: Vec<Completion> = Vec::with_capacity(tasks.len());
    let mut now = 0.0f64;
    // Round-robin pointer for WorkStealing placement.
    let mut rr = 0usize;

    let learnt_pool = match policy {
        Policy::DedicatedSplit { learnt_workers } => learnt_workers,
        _ => 0,
    };

    // Start a task on a worker: schedule its completion.
    macro_rules! start {
        ($w:expr, $task_idx:expr, $events:expr) => {{
            le_obs::trace_instant!("sched.task.start");
            let t = &tasks[$task_idx];
            let finish = now + t.service;
            workers[$w].busy_until = finish;
            workers[$w].busy_time += t.service;
            worker_free[$w] = false;
            $events.push(Event {
                time: finish,
                seq,
                kind: EventKind::Completion {
                    worker: $w,
                    task: $task_idx,
                },
            });
            seq += 1;
        }};
    }

    // Find an idle worker in a pool range.
    let find_idle = |free: &[bool], range: std::ops::Range<usize>| -> Option<usize> {
        range.into_iter().find(|&w| free[w])
    };

    while let Some(ev) = events.pop() {
        now = ev.time;
        match ev.kind {
            EventKind::Arrival(idx) => {
                let class = tasks[idx].class;
                match policy {
                    Policy::SingleQueue | Policy::LearntPriority => {
                        if let Some(w) = find_idle(&worker_free, 0..n_workers) {
                            start!(w, idx, events);
                        } else if policy == Policy::LearntPriority
                            && class == TaskClass::Learnt
                        {
                            learnt_fifo.push_back(idx);
                        } else {
                            global_fifo.push_back(idx);
                        }
                    }
                    Policy::DedicatedSplit { .. } => {
                        let (pool, queue) = match class {
                            TaskClass::Learnt => (0..learnt_pool, &mut learnt_fifo),
                            TaskClass::Unlearnt => {
                                (learnt_pool..n_workers, &mut unlearnt_fifo)
                            }
                        };
                        if let Some(w) = find_idle(&worker_free, pool) {
                            start!(w, idx, events);
                        } else {
                            queue.push_back(idx);
                        }
                    }
                    Policy::ShortestQueue => {
                        // Join the worker with the least queued demand
                        // (counting remaining busy time).
                        let w = (0..n_workers)
                            .min_by(|&a, &b| {
                                let da = workers[a].queued_service
                                    + (workers[a].busy_until - now).max(0.0);
                                let db = workers[b].queued_service
                                    + (workers[b].busy_until - now).max(0.0);
                                da.total_cmp(&db)
                            })
                            .expect("n_workers > 0"); // lint:allow(no-panic): worker count validated at sim start
                        if worker_free[w] {
                            start!(w, idx, events);
                        } else {
                            workers[w].queued_service += tasks[idx].service;
                            workers[w].queue.push_back(idx);
                        }
                    }
                    Policy::WorkStealing => {
                        let w = rr % n_workers;
                        rr += 1;
                        if worker_free[w] {
                            start!(w, idx, events);
                        } else {
                            workers[w].queued_service += tasks[idx].service;
                            workers[w].queue.push_back(idx);
                        }
                    }
                }
            }
            EventKind::Completion { worker, task } => {
                le_obs::trace_instant!("sched.task.complete");
                let t = &tasks[task];
                completions.push(Completion {
                    class: t.class,
                    arrival: t.arrival,
                    start: now - t.service,
                    finish: now,
                });
                worker_free[worker] = true;
                // Pull next work per policy.
                match policy {
                    Policy::SingleQueue => {
                        if let Some(next) = global_fifo.pop_front() {
                            start!(worker, next, events);
                        }
                    }
                    Policy::LearntPriority => {
                        if let Some(next) =
                            learnt_fifo.pop_front().or_else(|| global_fifo.pop_front())
                        {
                            start!(worker, next, events);
                        }
                    }
                    Policy::DedicatedSplit { .. } => {
                        let queue = if worker < learnt_pool {
                            &mut learnt_fifo
                        } else {
                            &mut unlearnt_fifo
                        };
                        if let Some(next) = queue.pop_front() {
                            start!(worker, next, events);
                        }
                    }
                    Policy::ShortestQueue => {
                        if let Some(next) = workers[worker].queue.pop_front() {
                            workers[worker].queued_service -= tasks[next].service;
                            start!(worker, next, events);
                        }
                    }
                    Policy::WorkStealing => {
                        let next = if let Some(n) = workers[worker].queue.pop_front() {
                            workers[worker].queued_service -= tasks[n].service;
                            Some(n)
                        } else {
                            // Steal from the most loaded queue.
                            let victim = (0..n_workers)
                                .filter(|&v| !workers[v].queue.is_empty())
                                .max_by(|&a, &b| {
                                    workers[a]
                                        .queued_service
                                        .total_cmp(&workers[b].queued_service)
                                });
                            victim.and_then(|v| {
                                workers[v].queue.pop_back().inspect(|&n| {
                                    workers[v].queued_service -= tasks[n].service;
                                })
                            })
                        };
                        if let Some(n) = next {
                            start!(worker, n, events);
                        }
                    }
                }
            }
        }
    }
    let busy: Vec<f64> = workers.iter().map(|w| w.busy_time).collect();
    Ok(Metrics::from_completions(completions, &busy, now))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Task, WorkloadConfig};

    fn mixed_workload(seed: u64) -> Workload {
        Workload::generate(
            &WorkloadConfig {
                n_tasks: 800,
                mean_interarrival: 0.02,
                sim_service: 1.0,
                learnt_speedup: 1e4,
                learnt_fraction_start: 0.5,
                learnt_fraction_end: 0.5,
            },
            seed,
        )
        .unwrap()
    }

    fn all_policies() -> Vec<Policy> {
        vec![
            Policy::SingleQueue,
            Policy::DedicatedSplit { learnt_workers: 1 },
            Policy::ShortestQueue,
            Policy::WorkStealing,
            Policy::LearntPriority,
        ]
    }

    #[test]
    fn every_task_completes_under_every_policy() {
        let w = mixed_workload(1);
        for policy in all_policies() {
            let m = simulate(&w, 4, policy).unwrap();
            assert_eq!(
                m.n_completed,
                800,
                "{}: all tasks must complete",
                policy.name()
            );
        }
    }

    #[test]
    fn conservation_of_work() {
        // Total busy time equals total service demand for every policy.
        let w = mixed_workload(2);
        let demand = w.total_service();
        for policy in all_policies() {
            let m = simulate(&w, 4, policy).unwrap();
            assert!(
                (m.total_busy - demand).abs() < 1e-6,
                "{}: busy {} vs demand {demand}",
                policy.name(),
                m.total_busy
            );
        }
    }

    #[test]
    fn makespan_bounded_below_by_critical_path() {
        let w = mixed_workload(3);
        let demand = w.total_service();
        let n_workers = 4;
        for policy in all_policies() {
            let m = simulate(&w, n_workers, policy).unwrap();
            assert!(
                m.makespan + 1e-9 >= demand / n_workers as f64,
                "{}: makespan {} below perfect-parallel bound",
                policy.name(),
                m.makespan
            );
            // And at least the last arrival.
            assert!(m.makespan >= w.tasks.last().unwrap().arrival);
        }
    }

    #[test]
    fn split_pool_cuts_learnt_latency_vs_single_queue() {
        // The paper's headline scheduling claim.
        let w = Workload::generate(
            &crate::task::WorkloadConfig {
                n_tasks: 1500,
                mean_interarrival: 0.4,
                sim_service: 8.0,
                learnt_speedup: 1e5,
                learnt_fraction_start: 0.6,
                learnt_fraction_end: 0.6,
            },
            4,
        )
        .unwrap();
        let single = simulate(&w, 4, Policy::SingleQueue).unwrap();
        let split = simulate(&w, 4, Policy::DedicatedSplit { learnt_workers: 1 }).unwrap();
        let single_learnt = single.mean_latency(TaskClass::Learnt).unwrap();
        let split_learnt = split.mean_latency(TaskClass::Learnt).unwrap();
        assert!(
            split_learnt < single_learnt * 0.2,
            "split should collapse learnt latency: {split_learnt} vs {single_learnt}"
        );
    }

    #[test]
    fn single_worker_single_queue_is_fifo() {
        // Two tasks arriving in order on one worker: completion order
        // matches arrival order and waits are exact.
        let w = Workload {
            tasks: vec![
                Task {
                    id: 0,
                    class: TaskClass::Unlearnt,
                    arrival: 0.0,
                    service: 2.0,
                },
                Task {
                    id: 1,
                    class: TaskClass::Learnt,
                    arrival: 0.5,
                    service: 0.1,
                },
            ],
        };
        let m = simulate(&w, 1, Policy::SingleQueue).unwrap();
        assert_eq!(m.n_completed, 2);
        assert!((m.makespan - 2.1).abs() < 1e-12);
        // The learnt task waited behind the long one: latency 1.6.
        assert!((m.mean_latency(TaskClass::Learnt).unwrap() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn learnt_priority_reorders_queue() {
        // Same two tasks + a second long one; priority lets the learnt task
        // jump the queue.
        let tasks = vec![
            Task {
                id: 0,
                class: TaskClass::Unlearnt,
                arrival: 0.0,
                service: 2.0,
            },
            Task {
                id: 1,
                class: TaskClass::Unlearnt,
                arrival: 0.1,
                service: 2.0,
            },
            Task {
                id: 2,
                class: TaskClass::Learnt,
                arrival: 0.2,
                service: 0.01,
            },
        ];
        let w = Workload { tasks };
        let fifo = simulate(&w, 1, Policy::SingleQueue).unwrap();
        let prio = simulate(&w, 1, Policy::LearntPriority).unwrap();
        assert!(
            prio.mean_latency(TaskClass::Learnt).unwrap()
                < fifo.mean_latency(TaskClass::Learnt).unwrap(),
            "priority must help the learnt task"
        );
    }

    #[test]
    fn deterministic() {
        let w = mixed_workload(9);
        for policy in all_policies() {
            let a = simulate(&w, 3, policy).unwrap();
            let b = simulate(&w, 3, policy).unwrap();
            assert_eq!(a.makespan, b.makespan, "{}", policy.name());
            assert_eq!(a.n_completed, b.n_completed);
        }
    }

    #[test]
    fn invalid_configs() {
        let w = mixed_workload(10);
        assert!(simulate(&w, 0, Policy::SingleQueue).is_err());
        assert!(simulate(&w, 4, Policy::DedicatedSplit { learnt_workers: 9 }).is_err());
    }
}
