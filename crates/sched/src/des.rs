//! The discrete-event engine: a single clock, arrival / completion /
//! timeout events, and policy-specific queue management.
//!
//! Straggler supervision (all in logical simulated time, never wall-clock):
//! [`simulate_with`] accepts a per-attempt deadline budget and a bounded
//! re-dispatch count. An attempt whose (possibly stall-inflated) service
//! would overrun the budget is cut off at the deadline, counted
//! (`sched.timeout`, `sched.redispatch`), and re-enters the policy's
//! arrival routing as a fresh attempt; the final permitted attempt always
//! runs to completion, so every task terminates. Injected stalls
//! ([`Stall`]) model stragglers: extra service applied to one specific
//! `(task, attempt)` pair, typically produced by `le-faults`'s seeded plan.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::metrics::{Completion, Metrics};
use crate::policy::Policy;
use crate::task::{TaskClass, Workload};
use crate::{Result, SchedError};

/// Event in the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival(usize),
    Completion { worker: usize, task: usize },
    /// An attempt hit its deadline budget: free the worker, re-dispatch.
    Timeout { worker: usize, task: usize },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison; ties broken by sequence number
        // for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Per-worker state.
#[derive(Debug, Clone, Default)]
struct Worker {
    busy_until: f64,
    busy_time: f64,
    queue: VecDeque<usize>,
    /// Total queued service demand (for shortest-queue routing).
    queued_service: f64,
}

/// An injected logical-time stall: `extra` additional service applied to
/// one specific attempt of one task (a deterministic straggler).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stall {
    /// Task index within the workload.
    pub task: usize,
    /// Zero-based attempt the stall applies to (0 = first dispatch).
    pub attempt: usize,
    /// Extra logical service time, ≥ 0 and finite.
    pub extra: f64,
}

/// Straggler-supervision options for [`simulate_with`].
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Per-attempt logical service budget. An attempt whose effective
    /// service exceeds it is timed out at the budget — unless the task has
    /// exhausted `max_redispatch`, in which case the attempt runs to
    /// completion (guaranteed termination). `None` disables timeouts.
    pub deadline: Option<f64>,
    /// Maximum re-dispatches per task after timeouts (0 disables timeouts
    /// even when a deadline is set: the single permitted attempt must run
    /// to completion).
    pub max_redispatch: usize,
    /// Injected per-`(task, attempt)` stalls (duplicates sum).
    pub stalls: Vec<Stall>,
}

/// Simulate the workload under the policy on `n_workers` workers.
pub fn simulate(workload: &Workload, n_workers: usize, policy: Policy) -> Result<Metrics> {
    simulate_with(workload, n_workers, policy, &SimOptions::default())
}

/// [`simulate`] with deadline budgets, bounded re-dispatch, and injected
/// stalls. With `SimOptions::default()` the behaviour — including every
/// event timestamp — is identical to [`simulate`].
pub fn simulate_with(
    workload: &Workload,
    n_workers: usize,
    policy: Policy,
    opts: &SimOptions,
) -> Result<Metrics> {
    policy.validate(n_workers)?;
    let tasks = &workload.tasks;
    if let Some(d) = opts.deadline {
        if !(d > 0.0 && d.is_finite()) {
            return Err(SchedError::InvalidConfig(format!(
                "deadline must be positive and finite, got {d}"
            )));
        }
    }
    for s in &opts.stalls {
        if s.task >= tasks.len() {
            return Err(SchedError::InvalidConfig(format!(
                "stall targets task {} of {}",
                s.task,
                tasks.len()
            )));
        }
        if !(s.extra >= 0.0 && s.extra.is_finite()) {
            return Err(SchedError::InvalidConfig(format!(
                "stall extra must be ≥ 0 and finite, got {}",
                s.extra
            )));
        }
    }
    // (task, attempt) -> summed injected stall. Lookup-only, so the
    // HashMap's iteration order never matters.
    let mut stall_map: HashMap<(usize, usize), f64> = HashMap::new();
    for s in &opts.stalls {
        *stall_map.entry((s.task, s.attempt)).or_insert(0.0) += s.extra;
    }
    // One causal trace span per DES run; task lifecycle instants below
    // attach to it, so a whole scheduling experiment reads as one request.
    let _tr = le_obs::trace_span!("sched.simulate");
    let mut events = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, t) in tasks.iter().enumerate() {
        events.push(Event {
            time: t.arrival,
            seq,
            kind: EventKind::Arrival(i),
        });
        seq += 1;
    }
    let mut workers = vec![Worker::default(); n_workers];
    let mut worker_free = vec![true; n_workers];
    // Global queues (policy-dependent use).
    let mut global_fifo: VecDeque<usize> = VecDeque::new();
    let mut learnt_fifo: VecDeque<usize> = VecDeque::new();
    let mut unlearnt_fifo: VecDeque<usize> = VecDeque::new();
    let mut completions: Vec<Completion> = Vec::with_capacity(tasks.len());
    let mut now = 0.0f64;
    // Round-robin pointer for WorkStealing placement.
    let mut rr = 0usize;
    // Dispatch attempts made so far, per task (0 until first start).
    let mut attempts = vec![0usize; tasks.len()];

    let learnt_pool = match policy {
        Policy::DedicatedSplit { learnt_workers } => learnt_workers,
        _ => 0,
    };

    // Effective service of a task's next/current attempt: base + stall.
    let eff = |idx: usize, attempt: usize| -> f64 {
        tasks[idx].service + stall_map.get(&(idx, attempt)).copied().unwrap_or(0.0)
    };

    // Start a task on a worker: schedule its completion — or, when its
    // effective service overruns the deadline budget and re-dispatches
    // remain, its timeout at the budget.
    macro_rules! start {
        ($w:expr, $task_idx:expr, $events:expr) => {{
            le_obs::trace_instant!("sched.task.start");
            let service = eff($task_idx, attempts[$task_idx]);
            let (finish, kind) = match opts.deadline {
                Some(d) if service > d && attempts[$task_idx] < opts.max_redispatch => (
                    now + d,
                    EventKind::Timeout {
                        worker: $w,
                        task: $task_idx,
                    },
                ),
                _ => (
                    now + service,
                    EventKind::Completion {
                        worker: $w,
                        task: $task_idx,
                    },
                ),
            };
            workers[$w].busy_until = finish;
            workers[$w].busy_time += finish - now;
            worker_free[$w] = false;
            $events.push(Event {
                time: finish,
                seq,
                kind,
            });
            seq += 1;
        }};
    }

    // A worker just went free (completion or timeout): pull next work per
    // policy.
    macro_rules! pull_next {
        ($worker:expr, $events:expr) => {{
            let worker = $worker;
            match policy {
                Policy::SingleQueue => {
                    if let Some(next) = global_fifo.pop_front() {
                        start!(worker, next, $events);
                    }
                }
                Policy::LearntPriority => {
                    if let Some(next) =
                        learnt_fifo.pop_front().or_else(|| global_fifo.pop_front())
                    {
                        start!(worker, next, $events);
                    }
                }
                Policy::DedicatedSplit { .. } => {
                    let queue = if worker < learnt_pool {
                        &mut learnt_fifo
                    } else {
                        &mut unlearnt_fifo
                    };
                    if let Some(next) = queue.pop_front() {
                        start!(worker, next, $events);
                    }
                }
                Policy::ShortestQueue => {
                    if let Some(next) = workers[worker].queue.pop_front() {
                        workers[worker].queued_service -= tasks[next].service;
                        start!(worker, next, $events);
                    }
                }
                Policy::WorkStealing => {
                    let next = if let Some(n) = workers[worker].queue.pop_front() {
                        workers[worker].queued_service -= tasks[n].service;
                        Some(n)
                    } else {
                        // Steal from the most loaded queue.
                        let victim = (0..n_workers)
                            .filter(|&v| !workers[v].queue.is_empty())
                            .max_by(|&a, &b| {
                                workers[a]
                                    .queued_service
                                    .total_cmp(&workers[b].queued_service)
                            });
                        victim.and_then(|v| {
                            workers[v].queue.pop_back().inspect(|&n| {
                                workers[v].queued_service -= tasks[n].service;
                            })
                        })
                    };
                    if let Some(n) = next {
                        start!(worker, n, $events);
                    }
                }
            }
        }};
    }

    // Find an idle worker in a pool range.
    let find_idle = |free: &[bool], range: std::ops::Range<usize>| -> Option<usize> {
        range.into_iter().find(|&w| free[w])
    };

    while let Some(ev) = events.pop() {
        now = ev.time;
        match ev.kind {
            EventKind::Arrival(idx) => {
                let class = tasks[idx].class;
                match policy {
                    Policy::SingleQueue | Policy::LearntPriority => {
                        if let Some(w) = find_idle(&worker_free, 0..n_workers) {
                            start!(w, idx, events);
                        } else if policy == Policy::LearntPriority
                            && class == TaskClass::Learnt
                        {
                            learnt_fifo.push_back(idx);
                        } else {
                            global_fifo.push_back(idx);
                        }
                    }
                    Policy::DedicatedSplit { .. } => {
                        let (pool, queue) = match class {
                            TaskClass::Learnt => (0..learnt_pool, &mut learnt_fifo),
                            TaskClass::Unlearnt => {
                                (learnt_pool..n_workers, &mut unlearnt_fifo)
                            }
                        };
                        if let Some(w) = find_idle(&worker_free, pool) {
                            start!(w, idx, events);
                        } else {
                            queue.push_back(idx);
                        }
                    }
                    Policy::ShortestQueue => {
                        // Join the worker with the least queued demand
                        // (counting remaining busy time).
                        let w = (0..n_workers)
                            .min_by(|&a, &b| {
                                let da = workers[a].queued_service
                                    + (workers[a].busy_until - now).max(0.0);
                                let db = workers[b].queued_service
                                    + (workers[b].busy_until - now).max(0.0);
                                da.total_cmp(&db)
                            })
                            .expect("n_workers > 0"); // lint:allow(no-panic): worker count validated at sim start
                        if worker_free[w] {
                            start!(w, idx, events);
                        } else {
                            workers[w].queued_service += tasks[idx].service;
                            workers[w].queue.push_back(idx);
                        }
                    }
                    Policy::WorkStealing => {
                        let w = rr % n_workers;
                        rr += 1;
                        if worker_free[w] {
                            start!(w, idx, events);
                        } else {
                            workers[w].queued_service += tasks[idx].service;
                            workers[w].queue.push_back(idx);
                        }
                    }
                }
            }
            EventKind::Completion { worker, task } => {
                le_obs::trace_instant!("sched.task.complete");
                let t = &tasks[task];
                let service = eff(task, attempts[task]);
                completions.push(Completion {
                    class: t.class,
                    arrival: t.arrival,
                    start: now - service,
                    finish: now,
                });
                worker_free[worker] = true;
                pull_next!(worker, events);
            }
            EventKind::Timeout { worker, task } => {
                le_obs::trace_instant!("sched.task.timeout");
                le_obs::counter!("sched.timeout").inc();
                le_obs::counter!("sched.redispatch").inc();
                // The straggling attempt is abandoned at the budget; the
                // task re-enters the policy's arrival routing at the
                // current clock as its next attempt.
                attempts[task] += 1;
                events.push(Event {
                    time: now,
                    seq,
                    kind: EventKind::Arrival(task),
                });
                seq += 1;
                worker_free[worker] = true;
                pull_next!(worker, events);
            }
        }
    }
    let busy: Vec<f64> = workers.iter().map(|w| w.busy_time).collect();
    Ok(Metrics::from_completions(completions, &busy, now))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Task, WorkloadConfig};

    fn mixed_workload(seed: u64) -> Workload {
        Workload::generate(
            &WorkloadConfig {
                n_tasks: 800,
                mean_interarrival: 0.02,
                sim_service: 1.0,
                learnt_speedup: 1e4,
                learnt_fraction_start: 0.5,
                learnt_fraction_end: 0.5,
            },
            seed,
        )
        .unwrap()
    }

    fn all_policies() -> Vec<Policy> {
        vec![
            Policy::SingleQueue,
            Policy::DedicatedSplit { learnt_workers: 1 },
            Policy::ShortestQueue,
            Policy::WorkStealing,
            Policy::LearntPriority,
        ]
    }

    fn one_task(service: f64) -> Workload {
        Workload {
            tasks: vec![Task {
                id: 0,
                class: TaskClass::Unlearnt,
                arrival: 0.0,
                service,
            }],
        }
    }

    #[test]
    fn every_task_completes_under_every_policy() {
        let w = mixed_workload(1);
        for policy in all_policies() {
            let m = simulate(&w, 4, policy).unwrap();
            assert_eq!(
                m.n_completed,
                800,
                "{}: all tasks must complete",
                policy.name()
            );
        }
    }

    #[test]
    fn conservation_of_work() {
        // Total busy time equals total service demand for every policy.
        let w = mixed_workload(2);
        let demand = w.total_service();
        for policy in all_policies() {
            let m = simulate(&w, 4, policy).unwrap();
            assert!(
                (m.total_busy - demand).abs() < 1e-6,
                "{}: busy {} vs demand {demand}",
                policy.name(),
                m.total_busy
            );
        }
    }

    #[test]
    fn makespan_bounded_below_by_critical_path() {
        let w = mixed_workload(3);
        let demand = w.total_service();
        let n_workers = 4;
        for policy in all_policies() {
            let m = simulate(&w, n_workers, policy).unwrap();
            assert!(
                m.makespan + 1e-9 >= demand / n_workers as f64,
                "{}: makespan {} below perfect-parallel bound",
                policy.name(),
                m.makespan
            );
            // And at least the last arrival.
            assert!(m.makespan >= w.tasks.last().unwrap().arrival);
        }
    }

    #[test]
    fn split_pool_cuts_learnt_latency_vs_single_queue() {
        // The paper's headline scheduling claim.
        let w = Workload::generate(
            &crate::task::WorkloadConfig {
                n_tasks: 1500,
                mean_interarrival: 0.4,
                sim_service: 8.0,
                learnt_speedup: 1e5,
                learnt_fraction_start: 0.6,
                learnt_fraction_end: 0.6,
            },
            4,
        )
        .unwrap();
        let single = simulate(&w, 4, Policy::SingleQueue).unwrap();
        let split = simulate(&w, 4, Policy::DedicatedSplit { learnt_workers: 1 }).unwrap();
        let single_learnt = single.mean_latency(TaskClass::Learnt).unwrap();
        let split_learnt = split.mean_latency(TaskClass::Learnt).unwrap();
        assert!(
            split_learnt < single_learnt * 0.2,
            "split should collapse learnt latency: {split_learnt} vs {single_learnt}"
        );
    }

    #[test]
    fn single_worker_single_queue_is_fifo() {
        // Two tasks arriving in order on one worker: completion order
        // matches arrival order and waits are exact.
        let w = Workload {
            tasks: vec![
                Task {
                    id: 0,
                    class: TaskClass::Unlearnt,
                    arrival: 0.0,
                    service: 2.0,
                },
                Task {
                    id: 1,
                    class: TaskClass::Learnt,
                    arrival: 0.5,
                    service: 0.1,
                },
            ],
        };
        let m = simulate(&w, 1, Policy::SingleQueue).unwrap();
        assert_eq!(m.n_completed, 2);
        assert!((m.makespan - 2.1).abs() < 1e-12);
        // The learnt task waited behind the long one: latency 1.6.
        assert!((m.mean_latency(TaskClass::Learnt).unwrap() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn learnt_priority_reorders_queue() {
        // Same two tasks + a second long one; priority lets the learnt task
        // jump the queue.
        let tasks = vec![
            Task {
                id: 0,
                class: TaskClass::Unlearnt,
                arrival: 0.0,
                service: 2.0,
            },
            Task {
                id: 1,
                class: TaskClass::Unlearnt,
                arrival: 0.1,
                service: 2.0,
            },
            Task {
                id: 2,
                class: TaskClass::Learnt,
                arrival: 0.2,
                service: 0.01,
            },
        ];
        let w = Workload { tasks };
        let fifo = simulate(&w, 1, Policy::SingleQueue).unwrap();
        let prio = simulate(&w, 1, Policy::LearntPriority).unwrap();
        assert!(
            prio.mean_latency(TaskClass::Learnt).unwrap()
                < fifo.mean_latency(TaskClass::Learnt).unwrap(),
            "priority must help the learnt task"
        );
    }

    #[test]
    fn deterministic() {
        let w = mixed_workload(9);
        for policy in all_policies() {
            let a = simulate(&w, 3, policy).unwrap();
            let b = simulate(&w, 3, policy).unwrap();
            assert_eq!(a.makespan, b.makespan, "{}", policy.name());
            assert_eq!(a.n_completed, b.n_completed);
        }
    }

    #[test]
    fn invalid_configs() {
        let w = mixed_workload(10);
        assert!(simulate(&w, 0, Policy::SingleQueue).is_err());
        assert!(simulate(&w, 4, Policy::DedicatedSplit { learnt_workers: 9 }).is_err());
    }

    #[test]
    fn default_options_reproduce_plain_simulate() {
        let w = mixed_workload(17);
        for policy in all_policies() {
            let plain = simulate(&w, 4, policy).unwrap();
            let opt = simulate_with(&w, 4, policy, &SimOptions::default()).unwrap();
            assert_eq!(plain.makespan, opt.makespan, "{}", policy.name());
            assert_eq!(plain.n_completed, opt.n_completed);
            assert_eq!(plain.total_busy, opt.total_busy);
        }
    }

    #[test]
    fn overlong_task_times_out_and_final_attempt_completes() {
        // service 10 under a budget of 2 with 2 re-dispatches: attempts at
        // t=0 and t=2 are cut at the budget; the final attempt (t=4) must
        // run to completion -> makespan 14, busy 2 + 2 + 10.
        let w = one_task(10.0);
        let opts = SimOptions {
            deadline: Some(2.0),
            max_redispatch: 2,
            stalls: vec![],
        };
        let before = le_obs::snapshot().counter("sched.timeout").unwrap_or(0);
        let m = simulate_with(&w, 1, Policy::SingleQueue, &opts).unwrap();
        assert_eq!(m.n_completed, 1);
        assert!((m.makespan - 14.0).abs() < 1e-12, "makespan {}", m.makespan);
        assert!((m.total_busy - 14.0).abs() < 1e-12, "busy {}", m.total_busy);
        let after = le_obs::snapshot().counter("sched.timeout").unwrap_or(0);
        assert_eq!(after - before, 2, "two timed-out attempts");
    }

    #[test]
    fn stalled_attempt_times_out_and_clean_retry_escapes() {
        // A short task whose *first* attempt is stalled past the budget:
        // timeout at t=2, retry runs the clean 1.0 service -> makespan 3.
        let w = one_task(1.0);
        let opts = SimOptions {
            deadline: Some(2.0),
            max_redispatch: 1,
            stalls: vec![Stall {
                task: 0,
                attempt: 0,
                extra: 5.0,
            }],
        };
        let m = simulate_with(&w, 1, Policy::SingleQueue, &opts).unwrap();
        assert_eq!(m.n_completed, 1);
        assert!((m.makespan - 3.0).abs() < 1e-12, "makespan {}", m.makespan);
        assert!((m.total_busy - 3.0).abs() < 1e-12, "busy {}", m.total_busy);
    }

    #[test]
    fn zero_redispatch_budget_disables_timeouts() {
        let w = one_task(10.0);
        let opts = SimOptions {
            deadline: Some(2.0),
            max_redispatch: 0,
            stalls: vec![],
        };
        let m = simulate_with(&w, 1, Policy::SingleQueue, &opts).unwrap();
        assert!((m.makespan - 10.0).abs() < 1e-12);
    }

    #[test]
    fn stalls_complete_under_every_policy_and_are_deterministic() {
        let w = mixed_workload(21);
        let stalls: Vec<Stall> = (0..800)
            .step_by(37)
            .map(|task| Stall {
                task,
                attempt: 0,
                extra: 7.0,
            })
            .collect();
        let opts = SimOptions {
            deadline: Some(5.0),
            max_redispatch: 2,
            stalls,
        };
        for policy in all_policies() {
            let a = simulate_with(&w, 4, policy, &opts).unwrap();
            let b = simulate_with(&w, 4, policy, &opts).unwrap();
            assert_eq!(a.n_completed, 800, "{}", policy.name());
            assert_eq!(a.makespan, b.makespan, "{}", policy.name());
            assert_eq!(a.total_busy, b.total_busy, "{}", policy.name());
        }
    }

    #[test]
    fn invalid_options_rejected() {
        let w = one_task(1.0);
        for d in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let opts = SimOptions {
                deadline: Some(d),
                max_redispatch: 1,
                stalls: vec![],
            };
            assert!(simulate_with(&w, 1, Policy::SingleQueue, &opts).is_err());
        }
        let bad_task = SimOptions {
            deadline: None,
            max_redispatch: 0,
            stalls: vec![Stall {
                task: 5,
                attempt: 0,
                extra: 1.0,
            }],
        };
        assert!(simulate_with(&w, 1, Policy::SingleQueue, &bad_task).is_err());
        let bad_extra = SimOptions {
            deadline: None,
            max_redispatch: 0,
            stalls: vec![Stall {
                task: 0,
                attempt: 0,
                extra: -2.0,
            }],
        };
        assert!(simulate_with(&w, 1, Policy::SingleQueue, &bad_extra).is_err());
    }
}
