//! Task and workload model.

use le_linalg::Rng;

use crate::{Result, SchedError};

/// The two classes of work in an MLaroundHPC campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// A surrogate lookup — orders of magnitude shorter.
    Learnt,
    /// A full simulation.
    Unlearnt,
}

/// One unit of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Stable id (also the arrival order).
    pub id: usize,
    /// Class.
    pub class: TaskClass,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Service time (seconds).
    pub service: f64,
}

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Total tasks.
    pub n_tasks: usize,
    /// Mean inter-arrival time (exponential).
    pub mean_interarrival: f64,
    /// Mean service time of an *unlearnt* (simulation) task.
    pub sim_service: f64,
    /// Speedup factor of learnt tasks (service = sim_service / factor);
    /// the paper's example is 10⁵.
    pub learnt_speedup: f64,
    /// Learnt fraction at the start of the campaign.
    pub learnt_fraction_start: f64,
    /// Learnt fraction at the end (ramps linearly in task index — as the
    /// surrogate trains, more requests are served by lookup).
    pub learnt_fraction_end: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            n_tasks: 2000,
            mean_interarrival: 0.05,
            sim_service: 10.0,
            learnt_speedup: 1e5,
            learnt_fraction_start: 0.0,
            learnt_fraction_end: 0.95,
        }
    }
}

impl WorkloadConfig {
    fn validate(&self) -> Result<()> {
        if self.n_tasks == 0 {
            return Err(SchedError::InvalidConfig("n_tasks must be > 0".into()));
        }
        if self.mean_interarrival <= 0.0 || self.sim_service <= 0.0 || self.learnt_speedup < 1.0 {
            return Err(SchedError::InvalidConfig(
                "times must be positive, speedup ≥ 1".into(),
            ));
        }
        for f in [self.learnt_fraction_start, self.learnt_fraction_end] {
            if !(0.0..=1.0).contains(&f) {
                return Err(SchedError::InvalidConfig(format!(
                    "learnt fraction {f} not in [0,1]"
                )));
            }
        }
        Ok(())
    }
}

/// A generated task stream, sorted by arrival time.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Tasks in arrival order.
    pub tasks: Vec<Task>,
}

impl Workload {
    /// Generate a stochastic workload: Poisson arrivals, exponential
    /// service times, class drawn with a linearly ramping learnt fraction.
    pub fn generate(cfg: &WorkloadConfig, seed: u64) -> Result<Self> {
        cfg.validate()?;
        let mut rng = Rng::new(seed);
        let mut tasks = Vec::with_capacity(cfg.n_tasks);
        let mut t = 0.0;
        for id in 0..cfg.n_tasks {
            t += rng.exponential(1.0 / cfg.mean_interarrival);
            let progress = id as f64 / cfg.n_tasks.max(1) as f64;
            let learnt_p = cfg.learnt_fraction_start
                + (cfg.learnt_fraction_end - cfg.learnt_fraction_start) * progress;
            let class = if rng.bernoulli(learnt_p) {
                TaskClass::Learnt
            } else {
                TaskClass::Unlearnt
            };
            let mean_service = match class {
                TaskClass::Learnt => cfg.sim_service / cfg.learnt_speedup,
                TaskClass::Unlearnt => cfg.sim_service,
            };
            tasks.push(Task {
                id,
                class,
                arrival: t,
                service: rng.exponential(1.0 / mean_service),
            });
        }
        Ok(Self { tasks })
    }

    /// Number of tasks of each class `(learnt, unlearnt)`.
    pub fn class_counts(&self) -> (usize, usize) {
        let learnt = self
            .tasks
            .iter()
            .filter(|t| t.class == TaskClass::Learnt)
            .count();
        (learnt, self.tasks.len() - learnt)
    }

    /// Total service demand (sum of service times).
    pub fn total_service(&self) -> f64 {
        self.tasks.iter().map(|t| t.service).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Workload::generate(
            &WorkloadConfig {
                n_tasks: 0,
                ..Default::default()
            },
            1
        )
        .is_err());
        assert!(Workload::generate(
            &WorkloadConfig {
                learnt_speedup: 0.5,
                ..Default::default()
            },
            1
        )
        .is_err());
        assert!(Workload::generate(
            &WorkloadConfig {
                learnt_fraction_end: 1.5,
                ..Default::default()
            },
            1
        )
        .is_err());
    }

    #[test]
    fn arrivals_are_sorted_and_positive() {
        let w = Workload::generate(&WorkloadConfig::default(), 2).unwrap();
        assert_eq!(w.tasks.len(), 2000);
        assert!(w.tasks.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert!(w.tasks.iter().all(|t| t.arrival > 0.0 && t.service > 0.0));
    }

    #[test]
    fn learnt_fraction_ramps() {
        let w = Workload::generate(
            &WorkloadConfig {
                n_tasks: 4000,
                learnt_fraction_start: 0.0,
                learnt_fraction_end: 1.0,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        let first_half = &w.tasks[..2000];
        let second_half = &w.tasks[2000..];
        let frac = |ts: &[Task]| {
            ts.iter().filter(|t| t.class == TaskClass::Learnt).count() as f64 / ts.len() as f64
        };
        assert!(
            frac(second_half) > frac(first_half) + 0.3,
            "learnt fraction must ramp: {} -> {}",
            frac(first_half),
            frac(second_half)
        );
    }

    #[test]
    fn learnt_tasks_are_tiny() {
        let cfg = WorkloadConfig {
            learnt_fraction_start: 0.5,
            learnt_fraction_end: 0.5,
            ..Default::default()
        };
        let w = Workload::generate(&cfg, 4).unwrap();
        let mean_of = |class: TaskClass| {
            let v: Vec<f64> = w
                .tasks
                .iter()
                .filter(|t| t.class == class)
                .map(|t| t.service)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let ratio = mean_of(TaskClass::Unlearnt) / mean_of(TaskClass::Learnt);
        assert!(
            ratio > 1e4,
            "service ratio {ratio} should be near the configured 1e5"
        );
    }

    #[test]
    fn mean_interarrival_matches() {
        let w = Workload::generate(
            &WorkloadConfig {
                n_tasks: 20_000,
                mean_interarrival: 0.1,
                ..Default::default()
            },
            5,
        )
        .unwrap();
        let total = w.tasks.last().unwrap().arrival;
        let mean = total / 20_000.0;
        assert!((mean - 0.1).abs() < 0.01, "mean interarrival {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = WorkloadConfig::default();
        let a = Workload::generate(&cfg, 7).unwrap();
        let b = Workload::generate(&cfg, 7).unwrap();
        assert_eq!(a.tasks, b.tasks);
    }
}
