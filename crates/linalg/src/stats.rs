//! Statistics used throughout the workspace: summary statistics, regression
//! metrics (RMSE, MAE, R²), quantiles, autocorrelation (for the §III-D
//! blocking analysis), and an online Welford accumulator.

use crate::approx::approx_eq;
use crate::{LinalgError, Result};

/// Arithmetic mean. Returns `Empty` on an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(LinalgError::Empty);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divide by n).
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (divide by n-1); 0 for a single point.
pub fn sample_std(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(LinalgError::Empty);
    }
    if xs.len() == 1 {
        return Ok(0.0);
    }
    let m = mean(xs)?;
    let ss = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>();
    Ok((ss / (xs.len() - 1) as f64).sqrt())
}

/// Root-mean-square error between predictions and targets.
pub fn rmse(pred: &[f64], target: &[f64]) -> Result<f64> {
    check_pair(pred, target)?;
    let ss = pred
        .iter()
        .zip(target.iter())
        .map(|(&p, &t)| (p - t).powi(2))
        .sum::<f64>();
    Ok((ss / pred.len() as f64).sqrt())
}

/// Mean absolute error.
pub fn mae(pred: &[f64], target: &[f64]) -> Result<f64> {
    check_pair(pred, target)?;
    Ok(pred
        .iter()
        .zip(target.iter())
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64)
}

/// Coefficient of determination R². 1 = perfect; can be negative for models
/// worse than the mean predictor. Returns 1.0 when the target is constant
/// and predictions match it exactly, otherwise `-inf`-guarded 0 denominator
/// maps to `f64::NEG_INFINITY` avoided by returning 0.
pub fn r2(pred: &[f64], target: &[f64]) -> Result<f64> {
    check_pair(pred, target)?;
    let tm = mean(target)?;
    let ss_res: f64 = pred
        .iter()
        .zip(target.iter())
        .map(|(&p, &t)| (t - p).powi(2))
        .sum();
    let ss_tot: f64 = target.iter().map(|&t| (t - tm).powi(2)).sum();
    if approx_eq(ss_tot, 0.0) {
        return Ok(if approx_eq(ss_res, 0.0) { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    check_pair(xs, ys)?;
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if approx_eq(sxx, 0.0) || approx_eq(syy, 0.0) {
        return Ok(0.0);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Linear-interpolated quantile, `q` in `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(LinalgError::Empty);
    }
    debug_assert!((0.0..=1.0).contains(&q));
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Normalized autocorrelation function at the given lags. ACF(0) == 1.
/// Used by the blocking-interval ablation (E12): training samples should be
/// blocked at intervals beyond the autocorrelation time.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(LinalgError::Empty);
    }
    let m = mean(xs)?;
    let var: f64 = xs.iter().map(|x| (x - m).powi(2)).sum();
    let mut acf = Vec::with_capacity(max_lag + 1);
    if approx_eq(var, 0.0) {
        // Constant series: define ACF as 1 at lag 0, 0 beyond.
        acf.push(1.0);
        acf.extend(std::iter::repeat_n(0.0, max_lag));
        return Ok(acf);
    }
    for lag in 0..=max_lag.min(xs.len() - 1) {
        let cov: f64 = xs[..xs.len() - lag]
            .iter()
            .zip(xs[lag..].iter())
            .map(|(&a, &b)| (a - m) * (b - m))
            .sum();
        acf.push(cov / var);
    }
    Ok(acf)
}

/// Integrated autocorrelation time: `1 + 2 * sum of ACF(lag)` summed while
/// the ACF stays positive (the standard initial-positive-sequence cut).
pub fn autocorrelation_time(xs: &[f64], max_lag: usize) -> Result<f64> {
    let acf = autocorrelation(xs, max_lag)?;
    let mut tau = 1.0;
    for &a in acf.iter().skip(1) {
        if a <= 0.0 {
            break;
        }
        tau += 2.0 * a;
    }
    Ok(tau)
}

/// Online mean/variance accumulator (Welford). Numerically stable; usable
/// from streaming simulation observables.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0 before any data).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n-1 denominator); 0 with fewer than two points.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }
}

fn check_pair(a: &[f64], b: &[f64]) -> Result<()> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    if a.len() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "paired statistic",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-12);
        assert!((variance(&xs).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(rmse(&[], &[]).is_err());
        assert!(quantile(&[], 0.5).is_err());
        assert!(autocorrelation(&[], 3).is_err());
    }

    #[test]
    fn rmse_mae_known() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 2.0, 5.0];
        assert!((rmse(&p, &t).unwrap() - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&p, &t).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean_predictor() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((r2(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r2(&mean_pred, &t).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r2_constant_target() {
        let t = [3.0; 5];
        assert!((r2(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        assert!((r2(&[3.1; 5], &t).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn pearson_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert!((quantile(&xs, 0.5).unwrap() - 3.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0).unwrap() - 5.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.25).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn acf_of_iid_noise_decays() {
        let mut rng = Rng::new(101);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.gaussian()).collect();
        let acf = autocorrelation(&xs, 5).unwrap();
        assert!((acf[0] - 1.0).abs() < 1e-12);
        for &a in &acf[1..] {
            assert!(a.abs() < 0.05, "iid noise should be uncorrelated, got {a}");
        }
        let tau = autocorrelation_time(&xs, 50).unwrap();
        assert!(tau < 1.5, "iid tau should be ~1, got {tau}");
    }

    #[test]
    fn acf_of_ar1_has_long_tau() {
        // AR(1) with phi=0.9 has tau = (1+phi)/(1-phi) = 19.
        let mut rng = Rng::new(103);
        let phi = 0.9;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..200_000)
            .map(|_| {
                x = phi * x + rng.gaussian();
                x
            })
            .collect();
        let tau = autocorrelation_time(&xs, 400).unwrap();
        assert!((tau - 19.0).abs() < 4.0, "AR(1) tau {tau} should be near 19");
    }

    #[test]
    fn acf_constant_series() {
        let acf = autocorrelation(&[2.0; 10], 3).unwrap();
        assert_eq!(acf, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn welford_matches_batch() {
        let mut rng = Rng::new(107);
        let xs: Vec<f64> = (0..5000).map(|_| rng.uniform_in(-3.0, 7.0)).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - mean(&xs).unwrap()).abs() < 1e-10);
        assert!((w.sample_std() - sample_std(&xs).unwrap()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut rng = Rng::new(109);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gaussian()).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let (a_half, b_half) = xs.split_at(317);
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in a_half {
            a.push(x);
        }
        for &x in b_half {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a.count(), before.count());
        assert!((a.mean() - before.mean()).abs() < 1e-15);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 2.0).abs() < 1e-15);
    }
}
