//! Small dense solvers: Gaussian elimination with partial pivoting, Cholesky
//! factorization, and ordinary least squares via the normal equations. These
//! back the autoregressive forecasting baselines and calibration fits; sizes
//! are tiny (≤ a few hundred), so simplicity and correctness beat blocking.

use crate::matrix::Matrix;
use crate::{LinalgError, Result};

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// `A` must be square with `A.rows() == b.len()`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = m.get(col, col).abs();
        for r in col + 1..n {
            let v = m.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-14 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = m.get(col, col);
        for r in col + 1..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 { // lint:allow(float-hygiene): exact-zero elimination skip preserves bitwise results
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = rhs[r];
        for c in r + 1..n {
            acc -= m.get(r, c) * x[c];
        }
        x[r] = acc / m.get(r, r);
    }
    Ok(x)
}

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `A = L L^T`.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::Singular);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Ordinary least squares: find `beta` minimizing `||X beta - y||²` via the
/// normal equations with a small ridge (`lambda`) for conditioning.
/// `X` is `n × p`, `y` has length `n`; returns `beta` of length `p`.
pub fn least_squares(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if x.rows() != y.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "least_squares",
            lhs: x.shape(),
            rhs: (y.len(), 1),
        });
    }
    if x.rows() == 0 {
        return Err(LinalgError::Empty);
    }
    let p = x.cols();
    // X^T X + lambda I
    let y_mat = Matrix::from_vec(y.len(), 1, y.to_vec())?;
    let mut xtx = x.t_matmul(x)?;
    for i in 0..p {
        let v = xtx.get(i, i) + lambda;
        xtx.set(i, i, v);
    }
    let xty = x.t_matmul(&y_mat)?;
    solve(&xtx, xty.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular)));
    }

    #[test]
    fn solve_random_roundtrip() {
        let mut rng = Rng::new(55);
        for trial in 0..20 {
            let n = 5 + trial % 5;
            // Diagonally dominant to guarantee solvability.
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, rng.uniform_in(-1.0, 1.0));
                }
                let v = a.get(i, i) + n as f64;
                a.set(i, i, v);
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
            let x_mat = Matrix::from_vec(n, 1, x_true.clone()).unwrap();
            let b = a.matmul(&x_mat).unwrap();
            let x = solve(&a, b.as_slice()).unwrap();
            for (got, want) in x.iter().zip(x_true.iter()) {
                assert!((got - want).abs() < 1e-9, "trial {trial}");
            }
        }
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        let back = l.matmul_t(&l).unwrap();
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(cholesky(&a), Err(LinalgError::Singular)));
    }

    #[test]
    fn least_squares_recovers_linear_model() {
        let mut rng = Rng::new(59);
        let n = 400;
        let beta_true = [1.5, -2.0, 0.5];
        let mut x = Matrix::zeros(n, 3);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let f1 = rng.uniform_in(-1.0, 1.0);
            let f2 = rng.uniform_in(-1.0, 1.0);
            x.set(i, 0, 1.0);
            x.set(i, 1, f1);
            x.set(i, 2, f2);
            y[i] = beta_true[0] + beta_true[1] * f1 + beta_true[2] * f2 + 0.01 * rng.gaussian();
        }
        let beta = least_squares(&x, &y, 1e-9).unwrap();
        for (got, want) in beta.iter().zip(beta_true.iter()) {
            assert!((got - want).abs() < 0.01, "{got} vs {want}");
        }
    }

    #[test]
    fn least_squares_shape_mismatch() {
        let x = Matrix::zeros(3, 2);
        assert!(least_squares(&x, &[1.0, 2.0], 0.0).is_err());
    }
}
