//! Tolerance-based floating-point comparison.
//!
//! Exact `==` on floats is almost always a bug in numeric code — rounding
//! differences between algebraically equivalent evaluation orders break it
//! silently. The workspace lint (`le-lint`, rule `float-hygiene`) flags
//! exact comparisons and points here: use [`approx_eq`] in library code and
//! [`assert_close!`](crate::assert_close) in tests.

/// Default absolute tolerance for [`approx_eq`]: loose enough to absorb
/// accumulated rounding over the workspace's longest reductions, tight
/// enough to catch real divergence.
pub const DEFAULT_ABS_TOL: f64 = 1e-9;

/// Default relative tolerance for [`approx_eq`].
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// True when `a` and `b` are equal within a mixed absolute/relative
/// tolerance: `|a - b| <= max(abs_tol, rel_tol * max(|a|, |b|))`.
///
/// Two non-finite values compare equal only when they are the *same*
/// infinity; NaN never compares equal to anything (matching IEEE intent —
/// use explicit `is_nan()` checks for NaN plumbing).
pub fn approx_eq_with(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    if a == b {
        // lint:allow(float-hygiene): bit-identical fast path, also the only
        // way same-signed infinities compare equal.
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs());
    diff <= abs_tol.max(rel_tol * scale)
}

/// [`approx_eq_with`] at the default tolerances.
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_with(a, b, DEFAULT_ABS_TOL, DEFAULT_REL_TOL)
}

/// Max elementwise deviation between two equal-length slices; `None` when
/// lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    Some(
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max),
    )
}

/// True when every element pair of two equal-length slices satisfies
/// [`approx_eq`].
pub fn slices_close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| approx_eq(x, y))
}

/// Assert two float expressions are close, with a readable failure message.
///
/// `assert_close!(a, b)` uses the default tolerances;
/// `assert_close!(a, b, tol)` uses `tol` as both absolute and relative
/// tolerance. Intended for tests — it panics on failure like `assert_eq!`.
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = ($a, $b);
        assert!(
            $crate::approx::approx_eq(a, b),
            "assert_close!({}, {}) failed: {a} vs {b} (|diff| = {})",
            stringify!($a),
            stringify!($b),
            (a - b).abs(),
        );
    }};
    ($a:expr, $b:expr, $tol:expr $(,)?) => {{
        let (a, b, tol) = ($a, $b, $tol);
        assert!(
            $crate::approx::approx_eq_with(a, b, tol, tol),
            "assert_close!({}, {}, {tol:e}) failed: {a} vs {b} (|diff| = {})",
            stringify!($a),
            stringify!($b),
            (a - b).abs(),
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_near_values() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_eq(0.0, 1e-12));
        assert!(approx_eq(-0.0, 0.0));
    }

    #[test]
    fn relative_tolerance_scales() {
        // 1e9 vs 1e9 + 1.0: relative error 1e-9, at the edge of tolerance.
        assert!(approx_eq(1e9, 1e9 + 1.0));
        assert!(!approx_eq(1e9, 1e9 + 100.0));
    }

    #[test]
    fn non_finite_semantics() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY));
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_eq(f64::NAN, 0.0));
        assert!(!approx_eq(f64::INFINITY, 1e300));
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), Some(0.5));
        assert_eq!(max_abs_diff(&[1.0], &[1.0, 2.0]), None);
        assert!(slices_close(&[1.0, 2.0], &[1.0, 2.0 + 1e-12]));
        assert!(!slices_close(&[1.0], &[1.0, 2.0]));
    }

    #[test]
    fn assert_close_macro() {
        assert_close!(0.1 + 0.2, 0.3);
        assert_close!(1.0, 1.01, 0.1);
        let sum: f64 = (0..10).map(|i| i as f64 * 0.1).sum();
        assert_close!(sum, 4.5);
    }

    #[test]
    #[should_panic(expected = "assert_close!")]
    fn assert_close_macro_fails_loudly() {
        assert_close!(1.0, 2.0);
    }
}
