#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed dimensions (k in 0..3, stencils) are the
// clearer idiom in numeric kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! `le-linalg` — the numeric substrate of the *learning-everywhere* workspace.
//!
//! Provides exactly the dense linear algebra, random-number generation, and
//! statistics that the rest of the workspace needs, with no external
//! dependencies:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the operations used by
//!   the neural-network crate (GEMM, transpose-multiplies, element-wise maps).
//! * [`rng`] — deterministic, splittable random number generation
//!   ([`rng::Xoshiro256`], seeded via [`rng::SplitMix64`]) with uniform,
//!   Gaussian (Box–Muller), exponential and integer-range sampling.
//! * [`stats`] — means, variances, quantiles, autocorrelation, RMSE/MAE/R²,
//!   and online (Welford) accumulators.
//! * [`solve`] — small dense solvers (Gaussian elimination with partial
//!   pivoting, Cholesky) used by calibration and least-squares baselines.
//! * [`approx`] — tolerance-based float comparison ([`approx::approx_eq`],
//!   [`assert_close!`]) backing the workspace's `float-hygiene` lint rule.
//!
//! Everything is deterministic given a seed; nothing allocates in hot loops
//! beyond what the caller hands in.

pub mod approx;
pub mod matrix;
pub mod rng;
pub mod solve;
pub mod stats;

pub use matrix::Matrix;
pub use rng::Rng;

/// Workspace-wide numeric error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// The system is singular (or not positive definite for Cholesky).
    Singular,
    /// An argument was empty where data is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular or not positive definite"),
            LinalgError::Empty => write!(f, "empty input where data is required"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
