//! Row-major dense `f64` matrix with the operations the neural-network and
//! solver crates need. Sized for the small/medium matrices of this workspace
//! (layer weights up to a few thousand per side). Small products use a
//! cache-friendly ikj loop; past [`GEMM_BT_MIN_FLOPS`] the three matmul
//! variants route through [`Matrix::gemm_bt`], a blocked transposed-RHS
//! kernel whose outer row loop runs on the `le_pool` worker pool, with
//! bit-identical results between the sequential and parallel paths.

use crate::rng::Rng;
use crate::{LinalgError, Result};

/// FLOP count (`m·n·k`) below which the legacy ikj loop is kept: the
/// transposed-RHS kernel's transpose copy and dispatch only pay off past
/// this size.
const GEMM_BT_MIN_FLOPS: usize = 1 << 15;
/// FLOP count past which the blocked kernel's row loop is dispatched on
/// the worker pool.
const GEMM_PAR_MIN_FLOPS: usize = 1 << 17;
/// Target FLOPs per parallel chunk of output rows (grain for the pool's
/// claiming cursor).
const GEMM_CHUNK_FLOPS: usize = 1 << 16;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major `Vec`. Returns `ShapeMismatch` if the length
    /// does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Build from nested rows (test convenience). Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// He-uniform initialization (for ReLU-family layers): U(-b, b) with
    /// b = sqrt(6 / fan_in).
    pub fn he_uniform(rows: usize, cols: usize, fan_in: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / fan_in.max(1) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.uniform_in(-bound, bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization (for tanh layers).
    pub fn xavier_uniform(rows: usize, cols: usize, fan_in: usize, fan_out: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.uniform_in(-bound, bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self * btᵀ` where `bt` is the **already transposed** right-hand
    /// side (`bt.rows` is the output column count): the blocked kernel
    /// behind the three matmul variants. Both operands stream row-major,
    /// and four output columns share each pass over `a_row` through
    /// independent register accumulators — better ILP than the
    /// store-per-k ikj loop. Every output element is a straight k-order
    /// dot product and every output row is computed independently, so the
    /// result is bit-identical between the sequential path and the
    /// pool-parallel path used past [`GEMM_PAR_MIN_FLOPS`].
    fn gemm_bt(&self, bt: &Matrix) -> Matrix {
        let (m, k) = (self.rows, self.cols);
        let n = bt.rows;
        let mut out = Matrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let kernel = |row0: usize, rows_out: &mut [f64]| {
            for (local, out_row) in rows_out.chunks_mut(n).enumerate() {
                let r = row0 + local;
                let a_row = &self.data[r * k..(r + 1) * k];
                let mut j = 0;
                while j + 4 <= n {
                    let b0 = &bt.data[j * k..(j + 1) * k];
                    let b1 = &bt.data[(j + 1) * k..(j + 2) * k];
                    let b2 = &bt.data[(j + 2) * k..(j + 3) * k];
                    let b3 = &bt.data[(j + 3) * k..(j + 4) * k];
                    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                    for (t, &a) in a_row.iter().enumerate() {
                        s0 += a * b0[t];
                        s1 += a * b1[t];
                        s2 += a * b2[t];
                        s3 += a * b3[t];
                    }
                    out_row[j] = s0;
                    out_row[j + 1] = s1;
                    out_row[j + 2] = s2;
                    out_row[j + 3] = s3;
                    j += 4;
                }
                while j < n {
                    out_row[j] = dot(a_row, &bt.data[j * k..(j + 1) * k]);
                    j += 1;
                }
            }
        };
        let flops = m * n * k.max(1);
        if flops >= GEMM_PAR_MIN_FLOPS {
            let rows_per_chunk = (GEMM_CHUNK_FLOPS / (n * k.max(1))).clamp(1, m);
            le_pool::par_for_chunks(&mut out.data, rows_per_chunk * n, |start, chunk| {
                kernel(start / n, chunk)
            });
        } else {
            kernel(0, &mut out.data);
        }
        out
    }

    /// Matrix product `self * rhs`. Small products use an ikj loop that
    /// accumulates into the output row (cache-friendly for row-major
    /// data); large ones transpose `rhs` once and run the blocked
    /// [`Matrix::gemm_bt`] kernel.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if self.rows * rhs.cols * self.cols >= GEMM_BT_MIN_FLOPS {
            return Ok(self.gemm_bt(&rhs.transpose()));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 { // lint:allow(float-hygiene): exact-zero sparsity skip, any other value must multiply
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// `self^T * rhs`. Small products use the k-outer accumulation loop
    /// (no transpose materialized); large ones pay for both transposes to
    /// reach the blocked [`Matrix::gemm_bt`] kernel.
    pub fn t_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if self.cols * rhs.cols * self.rows >= GEMM_BT_MIN_FLOPS {
            return Ok(self.transpose().gemm_bt(&rhs.transpose()));
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 { // lint:allow(float-hygiene): exact-zero sparsity skip, any other value must multiply
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aki * b;
                }
            }
        }
        Ok(out)
    }

    /// `self * rhs^T` without materializing the transpose: `rhs` already
    /// has the layout [`Matrix::gemm_bt`] wants, so the blocked kernel is
    /// used at every size (the per-element k-order sum is identical to the
    /// plain dot-product loop it replaces).
    pub fn matmul_t(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self.gemm_bt(rhs))
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(&self, rhs: &Matrix, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place `self += alpha * rhs` (the optimizer's axpy).
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scale every element in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// New matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` element-wise in place.
    pub fn map_mut(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Add a row vector (bias) to every row. `bias.len()` must equal `cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) -> Result<()> {
        if bias.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
        Ok(())
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Max absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Extract the rows at `indices` into a new matrix (mini-batch gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (oi, &ri) in indices.iter().enumerate() {
            assert!(ri < self.rows, "row index {ri} out of bounds {}", self.rows);
            out.row_mut(oi).copy_from_slice(self.row(ri));
        }
        out
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x` on slices.
#[inline]
pub fn axpy_slice(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn t_matmul_equals_explicit_transpose_mul() {
        let mut rng = Rng::new(5);
        let a = Matrix::he_uniform(4, 3, 4, &mut rng);
        let b = Matrix::he_uniform(4, 5, 4, &mut rng);
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_t_equals_explicit_transpose_mul() {
        let mut rng = Rng::new(6);
        let a = Matrix::he_uniform(4, 3, 4, &mut rng);
        let b = Matrix::he_uniform(5, 3, 4, &mut rng);
        let fast = a.matmul_t(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn large_matmul_crosses_into_blocked_kernel() {
        // 40·50·60 = 120k FLOPs: above GEMM_BT_MIN_FLOPS, so this routes
        // through gemm_bt (and the pool, above the parallel threshold).
        let mut rng = Rng::new(11);
        let a = Matrix::he_uniform(40, 60, 40, &mut rng);
        let b = Matrix::he_uniform(60, 50, 60, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let mut naive = Matrix::zeros(40, 50);
        for i in 0..40 {
            for j in 0..50 {
                let mut acc = 0.0;
                for t in 0..60 {
                    acc += a.get(i, t) * b.get(t, j);
                }
                naive.set(i, j, acc);
            }
        }
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_t_is_bitwise_dot_products() {
        // The blocked kernel must not change the k-order per-element sum.
        let mut rng = Rng::new(12);
        let a = Matrix::he_uniform(30, 45, 30, &mut rng);
        let b = Matrix::he_uniform(70, 45, 45, &mut rng);
        let fast = a.matmul_t(&b).unwrap();
        for i in 0..30 {
            for j in 0..70 {
                let expect = dot(a.row(i), b.row(j));
                assert_eq!(fast.get(i, j).to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(9);
        let a = Matrix::he_uniform(3, 7, 3, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let b = Matrix::from_rows(&[&[3.0, 1.0], &[-1.0, 2.0]]);
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn hadamard_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, -1.0]]);
        assert_eq!(
            a.hadamard(&b).unwrap(),
            Matrix::from_rows(&[&[2.0, 1.0], &[3.0, -4.0]])
        );
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let g = Matrix::from_rows(&[&[2.0, -4.0]]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a, Matrix::from_rows(&[&[0.0, 3.0]]));
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(a, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(a.col_sums(), vec![24.0, 46.0]);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[3, 1]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn he_init_within_bound() {
        let mut rng = Rng::new(77);
        let fan_in = 10;
        let m = Matrix::he_uniform(10, 10, fan_in, &mut rng);
        let bound = (6.0 / fan_in as f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn slice_helpers() {
        assert!((dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-12);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = vec![1.0, 1.0];
        axpy_slice(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }
}
