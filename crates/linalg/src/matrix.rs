//! Row-major dense `f64` matrix with the operations the neural-network and
//! solver crates need. Sized for the small/medium matrices of this workspace
//! (layer weights up to a few thousand per side). Small products use a
//! cache-friendly ikj loop; past [`GEMM_BT_MIN_FLOPS`] the three matmul
//! variants route through [`Matrix::gemm_bt`], a blocked transposed-RHS
//! kernel whose outer row loop runs on the `le_pool` worker pool, with
//! bit-identical results between the sequential and parallel paths.

use crate::rng::Rng;
use crate::{LinalgError, Result};

/// FLOP count (`m·n·k`) below which the legacy ikj loop is kept: the
/// transposed-RHS kernel's transpose copy and dispatch only pay off past
/// this size.
const GEMM_BT_MIN_FLOPS: usize = 1 << 15;
/// FLOP count past which the blocked kernel's row loop is dispatched on
/// the worker pool.
const GEMM_PAR_MIN_FLOPS: usize = 1 << 17;
/// Target FLOPs per parallel chunk of output rows (grain for the pool's
/// claiming cursor).
const GEMM_CHUNK_FLOPS: usize = 1 << 16;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major `Vec`. Returns `ShapeMismatch` if the length
    /// does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Build from nested rows (test convenience). Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// He-uniform initialization (for ReLU-family layers): U(-b, b) with
    /// b = sqrt(6 / fan_in).
    pub fn he_uniform(rows: usize, cols: usize, fan_in: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / fan_in.max(1) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.uniform_in(-bound, bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization (for tanh layers).
    pub fn xavier_uniform(rows: usize, cols: usize, fan_in: usize, fan_out: usize, rng: &mut Rng) -> Self {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.uniform_in(-bound, bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self * btᵀ` where `bt` is the **already transposed** right-hand
    /// side (`bt.rows` is the output column count): the blocked kernel
    /// behind the three matmul variants. Both operands stream row-major,
    /// and four output columns share each pass over `a_row` through
    /// independent register accumulators — better ILP than the
    /// store-per-k ikj loop. Every output element is a straight k-order
    /// dot product and every output row is computed independently, so the
    /// result is bit-identical between the sequential path and the
    /// pool-parallel path used past [`GEMM_PAR_MIN_FLOPS`].
    fn gemm_bt(&self, bt: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, bt.rows);
        gemm_bt_into(&self.data, self.rows, self.cols, bt, &mut out.data)
            .expect("operands constructed with matching shapes"); // lint:allow(no-panic): callers pre-validate or construct matching shapes
        out
    }

    /// Matrix product `self * rhs`. Small products use an ikj loop that
    /// accumulates into the output row (cache-friendly for row-major
    /// data); large ones run the register-tiled [`gemm_rm_into`] kernel
    /// directly on `rhs`'s natural `(k, n)` layout — no transpose is
    /// materialized on the hot path.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if self.rows * rhs.cols * self.cols >= GEMM_BT_MIN_FLOPS {
            let mut out = Matrix::zeros(self.rows, rhs.cols);
            gemm_rm_into(&self.data, self.rows, self.cols, rhs, &mut out.data)?;
            return Ok(out);
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 { // lint:allow(float-hygiene): exact-zero sparsity skip, any other value must multiply
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = aik.mul_add(b, *o);
                }
            }
        }
        Ok(out)
    }

    /// `self^T * rhs`. Small products use the k-outer accumulation loop
    /// (no transpose materialized); large ones transpose `self` once and
    /// run the register-tiled [`gemm_rm_into`] kernel against `rhs`'s
    /// natural layout.
    pub fn t_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "t_matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        if self.cols * rhs.cols * self.rows >= GEMM_BT_MIN_FLOPS {
            let at = self.transpose();
            let mut out = Matrix::zeros(self.cols, rhs.cols);
            gemm_rm_into(&at.data, self.cols, self.rows, rhs, &mut out.data)?;
            return Ok(out);
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 { // lint:allow(float-hygiene): exact-zero sparsity skip, any other value must multiply
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = aki.mul_add(b, *o);
                }
            }
        }
        Ok(out)
    }

    /// `self * rhs^T` without materializing the transpose: `rhs` already
    /// has the layout [`Matrix::gemm_bt`] wants, so the blocked kernel is
    /// used at every size (the per-element k-order sum is identical to the
    /// plain dot-product loop it replaces).
    pub fn matmul_t(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_t",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self.gemm_bt(rhs))
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(&self, rhs: &Matrix, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place `self += alpha * rhs` (the optimizer's axpy).
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scale every element in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// New matrix with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Apply `f` element-wise in place.
    pub fn map_mut(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Add a row vector (bias) to every row. `bias.len()` must equal `cols`.
    pub fn add_row_broadcast(&mut self, bias: &[f64]) -> Result<()> {
        if bias.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "add_row_broadcast",
                lhs: self.shape(),
                rhs: (1, bias.len()),
            });
        }
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
        Ok(())
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Max absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Extract the rows at `indices` into a new matrix (mini-batch gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (oi, &ri) in indices.iter().enumerate() {
            assert!(ri < self.rows, "row index {ri} out of bounds {}", self.rows);
            out.row_mut(oi).copy_from_slice(self.row(ri));
        }
        out
    }
}

/// The blocked transposed-RHS GEMM kernel on raw row-major storage:
/// `out = a * btᵀ` where `a` is an `(m, k)` row-major slice, `bt` is the
/// **already transposed** right-hand side (`bt.rows` is the output column
/// count `n`), and `out` is the caller-owned `(m, n)` row-major output —
/// no allocation happens here, which is what lets arena-backed batch
/// engines reuse one flat buffer across calls. Four output columns share
/// each pass over a row of `a` through independent register accumulators;
/// every output element is an ascending-k chain of fused multiply-adds
/// (the module-wide contraction — see [`dot`]) and every output row is
/// computed independently, so the result is bit-identical between the
/// sequential path and the pool-parallel path used past
/// [`GEMM_PAR_MIN_FLOPS`] — and bit-identical to [`Matrix::matmul_t`] and
/// [`gemm_rm_into`] on the same operands.
pub fn gemm_bt_into(
    a: &[f64],
    m: usize,
    k: usize,
    bt: &Matrix,
    out: &mut [f64],
) -> Result<()> {
    let n = bt.rows;
    if a.len() != m * k || bt.cols != k || out.len() != m * n {
        return Err(LinalgError::ShapeMismatch {
            op: "gemm_bt_into",
            lhs: (m, k),
            rhs: bt.shape(),
        });
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    let kernel = |row0: usize, rows_out: &mut [f64]| {
        for (local, out_row) in rows_out.chunks_mut(n).enumerate() {
            let r = row0 + local;
            let a_row = &a[r * k..(r + 1) * k];
            let mut j = 0;
            while j + 4 <= n {
                let b0 = &bt.data[j * k..(j + 1) * k];
                let b1 = &bt.data[(j + 1) * k..(j + 2) * k];
                let b2 = &bt.data[(j + 2) * k..(j + 3) * k];
                let b3 = &bt.data[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                for (t, &av) in a_row.iter().enumerate() {
                    s0 = av.mul_add(b0[t], s0);
                    s1 = av.mul_add(b1[t], s1);
                    s2 = av.mul_add(b2[t], s2);
                    s3 = av.mul_add(b3[t], s3);
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            while j < n {
                out_row[j] = dot(a_row, &bt.data[j * k..(j + 1) * k]);
                j += 1;
            }
        }
    };
    let flops = m * n * k.max(1);
    if flops >= GEMM_PAR_MIN_FLOPS {
        let rows_per_chunk = (GEMM_CHUNK_FLOPS / (n * k.max(1))).clamp(1, m);
        le_pool::par_for_chunks(out, rows_per_chunk * n, |start, chunk| {
            kernel(start / n, chunk)
        });
    } else {
        kernel(0, out);
    }
    Ok(())
}

/// Row-tile height of the natural-layout GEMM kernel: two independent
/// output rows share each streamed pass over a `b` row.
const GEMM_RM_MR: usize = 2;
/// Column-tile width of the natural-layout GEMM kernel: sixteen f64 lanes
/// (four AVX2 vectors) accumulate per output row. The 2×16 tile holds
/// eight accumulator vectors plus the four `b` vectors and a broadcast —
/// thirteen of the sixteen AVX registers — giving enough independent FMA
/// chains to hide the latency without spilling (wider row tiles measured
/// slower for exactly that reason).
const GEMM_RM_NR: usize = 16;
/// Padded column width of the narrow-output path: outputs with
/// `n < GEMM_RM_NR / 2` (e.g. a 3-wide regression head) are computed
/// through a zero-padded `(k, 8)` staging copy of `b` so the inner loop
/// stays a fixed-width vectorizable tile. Pad lanes accumulate
/// `fma(a, 0, s)` and are simply not copied out, so the real columns'
/// ascending-k chains are untouched — measured ~5× over a ragged scalar
/// tail on the 64→3 output layer.
const GEMM_RM_NARROW: usize = 8;

/// The register-tiled natural-layout GEMM kernel on raw row-major storage:
/// `out = a * b` where `a` is an `(m, k)` row-major slice, `b` keeps its
/// **natural** `(k, n)` layout (no transpose is ever materialized), and
/// `out` is the caller-owned `(m, n)` row-major output — the wide path
/// allocates nothing; narrow outputs (`n <` [`GEMM_RM_NARROW`]) stage one
/// small zero-padded copy of `b` per call. The loop nest is ikj over
/// [`GEMM_RM_MR`]×[`GEMM_RM_NR`] register tiles: for each `t` in `0..k`
/// the tile reads one contiguous sliver of `b`'s row `t` and feeds
/// [`GEMM_RM_MR`] independent accumulator rows, which the compiler
/// auto-vectorizes (the workspace forbids `unsafe`, so wide registers are
/// reached through codegen, not intrinsics). A ragged column tail
/// (`n % GEMM_RM_NR`) runs the same row-blocked accumulation over the
/// leftover lanes so mid-width shapes keep the cross-row ILP.
///
/// Every output element is accumulated in strictly ascending-`t` order
/// with one **fused multiply-add** per term (`f64::mul_add` — a single
/// rounding, exactly specified by IEEE 754, so the same bits on every
/// conforming host). All inner-product paths in this module use the same
/// contraction, so the result is **bit-identical** to [`dot`], to
/// [`gemm_bt_into`] on transposed operands, and between the sequential
/// path and the pool-parallel path used past [`GEMM_PAR_MIN_FLOPS`] —
/// vector width changes how many independent column sums advance
/// together, never the order or rounding of any one sum.
pub fn gemm_rm_into(
    a: &[f64],
    m: usize,
    k: usize,
    b: &Matrix,
    out: &mut [f64],
) -> Result<()> {
    let n = b.cols;
    if a.len() != m * k || b.rows != k || out.len() != m * n {
        return Err(LinalgError::ShapeMismatch {
            op: "gemm_rm_into",
            lhs: (m, k),
            rhs: b.shape(),
        });
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    let padded: Vec<f64>;
    let narrow = n < GEMM_RM_NARROW;
    if narrow {
        let mut bp = vec![0.0f64; k * GEMM_RM_NARROW];
        for t in 0..k {
            bp[t * GEMM_RM_NARROW..t * GEMM_RM_NARROW + n]
                .copy_from_slice(&b.data[t * n..(t + 1) * n]);
        }
        padded = bp;
    } else {
        padded = Vec::new();
    }
    let kernel = |row0: usize, rows_out: &mut [f64]| {
        if narrow {
            gemm_rm_rows_narrow(a, k, &padded, n, row0, rows_out);
        } else {
            gemm_rm_rows(a, k, &b.data, n, row0, rows_out);
        }
    };
    let flops = m * n * k.max(1);
    if flops >= GEMM_PAR_MIN_FLOPS {
        let rows_per_chunk = (GEMM_CHUNK_FLOPS / (n * k.max(1))).clamp(1, m);
        le_pool::par_for_chunks(out, rows_per_chunk * n, |start, chunk| {
            kernel(start / n, chunk)
        });
    } else {
        kernel(0, out);
    }
    Ok(())
}

/// Worker for [`gemm_rm_into`]: fill `out` (a whole-rows window of the
/// `(m, n)` result starting at absolute row `row0`) from `a` and the
/// natural-layout `b`. Split out so the sequential and pool-chunked paths
/// share one body.
fn gemm_rm_rows(a: &[f64], k: usize, b: &[f64], n: usize, row0: usize, out: &mut [f64]) {
    let rows = out.len() / n;
    let full = n / GEMM_RM_NR * GEMM_RM_NR;
    let mut r0 = 0;
    while r0 < rows {
        let mr = GEMM_RM_MR.min(rows - r0);
        let mut j0 = 0;
        while j0 < full {
            let mut acc = [[0.0f64; GEMM_RM_NR]; GEMM_RM_MR];
            for t in 0..k {
                let brow = &b[t * n + j0..t * n + j0 + GEMM_RM_NR];
                for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                    let av = a[(row0 + r0 + r) * k + t];
                    for (s, &bv) in accr.iter_mut().zip(brow.iter()) {
                        *s = av.mul_add(bv, *s);
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(mr) {
                out[(r0 + r) * n + j0..(r0 + r) * n + j0 + GEMM_RM_NR].copy_from_slice(accr);
            }
            j0 += GEMM_RM_NR;
        }
        if full < n {
            // Ragged column tail (covers every n < GEMM_RM_NR shape too):
            // same row-blocked ascending-t accumulation over the leftover
            // lanes, so even an n=3 output layer keeps `mr` independent
            // chains in flight.
            let rem = n - full;
            let mut acc = [[0.0f64; GEMM_RM_NR]; GEMM_RM_MR];
            for t in 0..k {
                let brow = &b[t * n + full..(t + 1) * n];
                for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                    let av = a[(row0 + r0 + r) * k + t];
                    for (s, &bv) in accr.iter_mut().zip(brow.iter()) {
                        *s = av.mul_add(bv, *s);
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(mr) {
                out[(r0 + r) * n + full..(r0 + r) * n + n].copy_from_slice(&accr[..rem]);
            }
        }
        r0 += mr;
    }
}

/// Narrow-output worker for [`gemm_rm_into`]: `bp` is the zero-padded
/// `(k, GEMM_RM_NARROW)` staging copy of `b`. The tile loop always runs
/// the fixed padded width (vectorizable); only the first `n` lanes of
/// each accumulator row are copied out, and pad lanes never touch them —
/// the real columns' ascending-k fma chains are bit-identical to the
/// generic worker's.
fn gemm_rm_rows_narrow(a: &[f64], k: usize, bp: &[f64], n: usize, row0: usize, out: &mut [f64]) {
    const NP: usize = GEMM_RM_NARROW;
    const MR: usize = 4; // scalar-free tile: more rows per pass hides fma latency
    let rows = out.len() / n;
    let mut r0 = 0;
    while r0 < rows {
        let mr = MR.min(rows - r0);
        let mut acc = [[0.0f64; NP]; MR];
        for (t, brow) in bp.chunks_exact(NP).enumerate() {
            for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                let av = a[(row0 + r0 + r) * k + t];
                for (s, &bv) in accr.iter_mut().zip(brow.iter()) {
                    *s = av.mul_add(bv, *s);
                }
            }
        }
        for (r, accr) in acc.iter().enumerate().take(mr) {
            out[(r0 + r) * n..(r0 + r + 1) * n].copy_from_slice(&accr[..n]);
        }
        r0 += mr;
    }
}

/// Dot product of two equal-length slices, accumulated in index order
/// with one fused multiply-add per term — the same contraction every
/// GEMM path in this module uses, so all of them agree to the bit.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .fold(0.0, |s, (&x, &y)| x.mul_add(y, s))
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x` on slices.
#[inline]
pub fn axpy_slice(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn t_matmul_equals_explicit_transpose_mul() {
        let mut rng = Rng::new(5);
        let a = Matrix::he_uniform(4, 3, 4, &mut rng);
        let b = Matrix::he_uniform(4, 5, 4, &mut rng);
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_t_equals_explicit_transpose_mul() {
        let mut rng = Rng::new(6);
        let a = Matrix::he_uniform(4, 3, 4, &mut rng);
        let b = Matrix::he_uniform(5, 3, 4, &mut rng);
        let fast = a.matmul_t(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn large_matmul_crosses_into_blocked_kernel() {
        // 40·50·60 = 120k FLOPs: above GEMM_BT_MIN_FLOPS, so this routes
        // through gemm_bt (and the pool, above the parallel threshold).
        let mut rng = Rng::new(11);
        let a = Matrix::he_uniform(40, 60, 40, &mut rng);
        let b = Matrix::he_uniform(60, 50, 60, &mut rng);
        let fast = a.matmul(&b).unwrap();
        let mut naive = Matrix::zeros(40, 50);
        for i in 0..40 {
            for j in 0..50 {
                let mut acc = 0.0;
                for t in 0..60 {
                    acc += a.get(i, t) * b.get(t, j);
                }
                naive.set(i, j, acc);
            }
        }
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_t_is_bitwise_dot_products() {
        // The blocked kernel must not change the k-order per-element sum.
        let mut rng = Rng::new(12);
        let a = Matrix::he_uniform(30, 45, 30, &mut rng);
        let b = Matrix::he_uniform(70, 45, 45, &mut rng);
        let fast = a.matmul_t(&b).unwrap();
        for i in 0..30 {
            for j in 0..70 {
                let expect = dot(a.row(i), b.row(j));
                assert_eq!(fast.get(i, j).to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn gemm_rm_is_bitwise_identical_to_gemm_bt() {
        // The register-tiled natural-layout kernel and the transposed-RHS
        // kernel must agree to the bit on every shape class: single row,
        // ragged row tail (m % MR), ragged column tail (n % NR), narrow
        // outputs (n < NR), and sizes that cross the pool threshold.
        let mut rng = Rng::new(13);
        for &(m, k, n) in &[
            (1usize, 64usize, 64usize),
            (3, 17, 5),
            (7, 64, 3),
            (64, 64, 64),
            (65, 33, 19),
            (256, 64, 48),
        ] {
            let a = Matrix::he_uniform(m, k, m.max(1), &mut rng);
            let b = Matrix::he_uniform(k, n, k.max(1), &mut rng);
            let bt = b.transpose();
            let mut rm = vec![0.0; m * n];
            let mut btk = vec![0.0; m * n];
            gemm_rm_into(a.as_slice(), m, k, &b, &mut rm).unwrap();
            gemm_bt_into(a.as_slice(), m, k, &bt, &mut btk).unwrap();
            for (i, (x, y)) in rm.iter().zip(btk.iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "element {i} differs at shape ({m},{k},{n})"
                );
            }
        }
    }

    #[test]
    fn gemm_rm_handles_empty_and_mismatched_shapes() {
        let b = Matrix::zeros(4, 0);
        let mut out = [0.0f64; 0];
        gemm_rm_into(&[0.0; 8], 2, 4, &b, &mut out).unwrap();
        let b2 = Matrix::zeros(3, 2);
        let mut out2 = [0.0f64; 4];
        assert!(matches!(
            gemm_rm_into(&[0.0; 8], 2, 4, &b2, &mut out2),
            Err(LinalgError::ShapeMismatch { op: "gemm_rm_into", .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(9);
        let a = Matrix::he_uniform(3, 7, 3, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let b = Matrix::from_rows(&[&[3.0, 1.0], &[-1.0, 2.0]]);
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn hadamard_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, -1.0]]);
        assert_eq!(
            a.hadamard(&b).unwrap(),
            Matrix::from_rows(&[&[2.0, 1.0], &[3.0, -4.0]])
        );
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let g = Matrix::from_rows(&[&[2.0, -4.0]]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a, Matrix::from_rows(&[&[0.0, 3.0]]));
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(a, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(a.col_sums(), vec![24.0, 46.0]);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[3, 1]);
        assert_eq!(g, Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn he_init_within_bound() {
        let mut rng = Rng::new(77);
        let fan_in = 10;
        let m = Matrix::he_uniform(10, 10, fan_in, &mut rng);
        let bound = (6.0 / fan_in as f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn slice_helpers() {
        assert!((dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-12);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = vec![1.0, 1.0];
        axpy_slice(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }
}
