//! Deterministic, splittable pseudo-random number generation.
//!
//! The workspace requires bit-for-bit reproducibility across runs and across
//! thread counts, so every stochastic component takes an explicit `u64` seed
//! and derives independent streams with [`Rng::split`] rather than sharing a
//! generator. The generator is xoshiro256** (Blackman & Vigna), seeded
//! through SplitMix64 as its authors recommend.

/// SplitMix64 — used to expand a single `u64` seed into xoshiro state and to
/// derive independent child seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new SplitMix64 stream from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** generator: fast, high quality, 256-bit state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 so that low-entropy seeds (0, 1, 2, …) still give
    /// well-mixed state.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The workspace RNG: xoshiro256** plus the sampling methods the simulators
/// and the ML stack need. One cached Gaussian keeps Box–Muller at one
/// transcendental pair per two samples.
#[derive(Debug, Clone)]
pub struct Rng {
    core: Xoshiro256,
    cached_gauss: Option<f64>,
}

impl Rng {
    /// Deterministic generator from a single seed.
    pub fn new(seed: u64) -> Self {
        Self {
            core: Xoshiro256::new(seed),
            cached_gauss: None,
        }
    }

    /// The `ordinal`-th independent substream of `seed`, derived statelessly:
    /// `Rng::substream(s, i)` always denotes the same generator, no matter
    /// how many other substreams were drawn before it. This is the anchor of
    /// the batch engines' determinism contract — consumer `i` of a seed gets
    /// stream `i` whether the consumers run one at a time or fused into one
    /// batched call. The ordinal is spread by the SplitMix64 golden-gamma
    /// multiply before seeding, so adjacent ordinals land in well-separated
    /// states.
    pub fn substream(seed: u64, ordinal: u64) -> Rng {
        let mut sm =
            SplitMix64::new(seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Rng::new(sm.next_u64())
    }

    /// Derive an independent child generator. Parallel code should split one
    /// child per task *before* distributing work so results do not depend on
    /// scheduling.
    pub fn split(&mut self) -> Rng {
        // Mix a fresh draw through SplitMix64 so parent and child streams do
        // not overlap in practice.
        let mut sm = SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF);
        Rng::new(sm.next_u64())
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform_in requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method to avoid modulo bias.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as usize;
            }
            // Rejection zone for exact uniformity.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Standard normal via Box–Muller with caching.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(g) = self.cached_gauss.take() {
            return g;
        }
        // Avoid ln(0).
        let mut u1 = self.uniform();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// Exponential with rate `lambda` (mean `1/lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        let mut u = self.uniform();
        while u <= f64::MIN_POSITIVE {
            u = self.uniform();
        }
        -u.ln() / lambda
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Binomial(n, p) sample. For the small `n` used by the epidemic
    /// simulator a direct sum of Bernoulli trials is fastest and exact.
    pub fn binomial(&mut self, n: usize, p: f64) -> usize {
        if p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        // For large n use a normal approximation guarded to the valid range;
        // the epidemic simulator only hits this for whole-population draws.
        if n > 256 {
            let mean = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            let x = self.normal(mean, sd).round();
            return x.clamp(0.0, n as f64) as usize;
        }
        (0..n).filter(|_| self.bernoulli(p)).count()
    }

    /// Poisson(lambda) via Knuth for small lambda, normal approximation for
    /// large.
    pub fn poisson(&mut self, lambda: f64) -> usize {
        debug_assert!(lambda >= 0.0);
        if lambda == 0.0 { // lint:allow(float-hygiene): exact degenerate-distribution fast path
            return 0;
        }
        if lambda > 64.0 {
            let x = self.normal(lambda, lambda.sqrt()).round();
            return x.max(0.0) as usize;
        }
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k ≤ n), order randomized.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Vector of `n` uniform values in `[lo, hi)`.
    pub fn uniform_vec(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.uniform_in(lo, hi)).collect()
    }

    /// Vector of `n` N(0, std²) values.
    pub fn gaussian_vec(&mut self, n: usize, std: f64) -> Vec<f64> {
        (0..n).map(|_| self.gaussian() * std).collect()
    }

    /// Sample an index according to unnormalized non-negative weights.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "categorical needs positive total weight");
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn split_streams_are_independent_of_parent_continuation() {
        let mut parent = Rng::new(7);
        let mut child = parent.split();
        let child_first = child.next_u64();
        // Re-derive: same parent state sequence gives the same child.
        let mut parent2 = Rng::new(7);
        let mut child2 = parent2.split();
        assert_eq!(child_first, child2.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let skew = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng::new(17);
        let n = 10usize;
        let mut counts = vec![0usize; n];
        let draws = 100_000;
        for _ in 0..draws {
            let k = rng.below(n);
            assert!(k < n);
            counts[k] += 1;
        }
        let expected = draws as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.07 * expected,
                "bucket {i} count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn binomial_mean_small_and_large_n() {
        let mut rng = Rng::new(19);
        for &(n, p) in &[(20usize, 0.3f64), (1000, 0.05)] {
            let draws = 20_000;
            let total: usize = (0..draws).map(|_| rng.binomial(n, p)).sum();
            let mean = total as f64 / draws as f64;
            let expected = n as f64 * p;
            assert!(
                (mean - expected).abs() < 0.05 * expected + 0.1,
                "binomial({n},{p}) mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    fn binomial_edge_probabilities() {
        let mut rng = Rng::new(23);
        assert_eq!(rng.binomial(100, 0.0), 0);
        assert_eq!(rng.binomial(100, 1.0), 100);
        assert_eq!(rng.binomial(500, 0.0), 0);
        assert_eq!(rng.binomial(500, 1.0), 500);
    }

    #[test]
    fn poisson_mean() {
        let mut rng = Rng::new(29);
        for &lambda in &[0.5f64, 4.0, 100.0] {
            let draws = 20_000;
            let total: usize = (0..draws).map(|_| rng.poisson(lambda)).sum();
            let mean = total as f64 / draws as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda + 0.05,
                "poisson({lambda}) mean {mean}"
            );
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(31);
        let lambda = 2.5;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / lambda).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(37);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle should move something");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::new(41);
        let idx = rng.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut seen = idx.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 20, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = Rng::new(43);
        let weights = [1.0, 3.0, 6.0];
        let draws = 60_000;
        let mut counts = [0usize; 3];
        for _ in 0..draws {
            counts[rng.categorical(&weights)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..3 {
            let expected = draws as f64 * weights[i] / total;
            assert!(
                (counts[i] as f64 - expected).abs() < 0.05 * expected + 10.0,
                "bucket {i}: {} vs {expected}",
                counts[i]
            );
        }
    }

    #[test]
    fn bernoulli_edges() {
        let mut rng = Rng::new(47);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }
}
