//! Determinism properties of the metrics layer, exercised end to end:
//! shard merges are exact (integer) and therefore associative and
//! commutative; span nesting depth is tracked through guards; and totals
//! recorded through the pool are bit-identical no matter how many worker
//! threads the schedule used.

use le_obs::Registry;
use le_pool::Pool;

// ---------------------------------------------------------------------------
// Histogram shard-merge properties
// ---------------------------------------------------------------------------

/// Merge per-shard bucket rows in the given order.
fn merge_in_order(shards: &[Vec<u64>], order: &[usize]) -> Vec<u64> {
    let width = shards.first().map(Vec::len).unwrap_or(0);
    let mut out = vec![0u64; width];
    for &s in order {
        for (acc, &c) in out.iter_mut().zip(shards[s].iter()) {
            *acc = acc.wrapping_add(c);
        }
    }
    out
}

#[test]
fn histogram_shard_merge_is_associative_and_commutative() {
    let reg = Registry::new();
    let h = reg.histogram("merge.h", &[1.0, 10.0, 100.0, 1000.0]);

    // Populate from 8 threads so multiple shards hold nonzero rows. Each
    // thread records a deterministic value set.
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..200usize {
                    h.record(((t * 977 + i * 31) % 2000) as f64);
                }
            });
        }
    });

    let shards = h.shard_counts();
    let n = shards.len();
    let reference = merge_in_order(&shards, &(0..n).collect::<Vec<_>>());
    assert_eq!(reference, h.counts(), "ascending-order merge is the snapshot");
    assert_eq!(reference.iter().sum::<u64>(), 1600, "every record landed");

    // Commutativity: reversed and rotated orders give the same merge.
    let reversed: Vec<usize> = (0..n).rev().collect();
    assert_eq!(merge_in_order(&shards, &reversed), reference);
    let rotated: Vec<usize> = (0..n).map(|i| (i + 3) % n).collect();
    assert_eq!(merge_in_order(&shards, &rotated), reference);
    // A fixed interleaved order (even shards then odd).
    let interleaved: Vec<usize> = (0..n).step_by(2).chain((1..n).step_by(2)).collect();
    assert_eq!(merge_in_order(&shards, &interleaved), reference);

    // Associativity: merging a prefix and suffix separately, then
    // combining, equals the one-pass merge.
    let left = merge_in_order(&shards, &(0..n / 2).collect::<Vec<_>>());
    let right = merge_in_order(&shards, &(n / 2..n).collect::<Vec<_>>());
    let combined: Vec<u64> = left
        .iter()
        .zip(right.iter())
        .map(|(&a, &b)| a.wrapping_add(b))
        .collect();
    assert_eq!(combined, reference);
}

// ---------------------------------------------------------------------------
// Span nesting depth invariants
// ---------------------------------------------------------------------------

#[test]
fn span_guards_track_nesting_depth() {
    let reg = Registry::new();
    let outer = reg.span("depth.outer");
    let inner = reg.span("depth.inner");

    {
        let _o = outer.enter();
        {
            let _i = inner.enter();
            {
                // Re-entering the same span one level deeper.
                let _i2 = inner.enter();
            }
        }
    }
    assert_eq!(outer.count(), 1);
    assert_eq!(inner.count(), 2);
    assert_eq!(outer.max_depth(), 1, "top-level span records depth 1");
    assert_eq!(inner.max_depth(), 3, "doubly nested span records depth 3");
}

#[test]
fn span_depth_is_per_thread() {
    let reg = Registry::new();
    let s = reg.span("depth.cross_thread");
    let outer = reg.span("depth.cross_outer");
    let _o = outer.enter();
    // A span entered on a *different* thread starts at depth 1 there: the
    // nesting stack is thread-local, not ambient.
    std::thread::scope(|scope| {
        let s2 = s.clone();
        scope.spawn(move || {
            let _g = s2.enter();
        });
    });
    assert_eq!(s.max_depth(), 1);
}

#[test]
fn timed_span_records_only_on_finish() {
    let reg = Registry::new();
    let s = reg.span("timed.finish_only");
    {
        // Dropped without `finish_secs` — e.g. an error path — leaves no
        // trace, so span counts always match accounting event counts.
        let _t = s.enter_timed();
    }
    assert_eq!(s.count(), 0);
    let t = s.enter_timed();
    let secs = t.finish_secs();
    assert!(secs >= 0.0);
    assert_eq!(s.count(), 1);
}

// ---------------------------------------------------------------------------
// Thread-count invariance
// ---------------------------------------------------------------------------

/// A fixed workload recorded through the pool: the counter total, histogram
/// bucket counts, span count, and span total must not depend on how many
/// workers executed it.
fn pooled_workload(threads: usize) -> (u64, Vec<u64>, u64, u64) {
    let reg = Registry::new();
    let c = reg.counter("inv.items");
    let h = reg.histogram("inv.sizes", &[10.0, 100.0, 1000.0]);
    let s = reg.span("inv.work");
    let pool = Pool::with_threads(threads);
    pool.par_for_each(1000, |i| {
        c.inc();
        h.record((i % 1500) as f64);
        s.record_ns((i as u64 % 97) + 1);
    });
    (c.value(), h.counts(), s.count(), s.total_ns())
}

#[test]
fn totals_bit_identical_across_thread_counts() {
    let baseline = pooled_workload(1);
    assert_eq!(baseline.0, 1000);
    assert_eq!(baseline.2, 1000);
    for threads in [4usize, 7] {
        let got = pooled_workload(threads);
        assert_eq!(
            got, baseline,
            "metrics diverged at {threads} worker threads"
        );
    }
}

#[test]
fn counter_totals_exact_under_concurrent_add() {
    let reg = Registry::new();
    let c = reg.counter("exact.adds");
    let pool = Pool::with_threads(7);
    pool.par_for_each(513, |i| c.add(i as u64 + 1));
    // Sum 1..=513 — exact, no increments lost to racing shards.
    assert_eq!(c.value(), 513 * 514 / 2);
}
