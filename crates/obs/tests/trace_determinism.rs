//! Journal determinism across thread counts: the same traced workload run
//! at `threads = 1, 4, 7` must produce the same number of events, the same
//! causal structure (order-normalized canonical text, byte-identical), and
//! zero drops — because `le-pool`'s decompositions are pure functions of
//! the problem size, never of the thread count.
//!
//! Single `#[test]` on purpose: the journal is process-global and this
//! test resets it between runs.

use le_pool::Pool;

/// A small mixed workload exercising every pool helper under trace roots.
fn workload(pool: &Pool) {
    for rep in 0..3 {
        let _root = le_obs::trace_root!("req");
        let mapped = pool.par_map_index(100, |i| i * 2 + rep);
        assert_eq!(mapped.len(), 100);
        let total = pool.par_reduce(50, 8, || 0usize, |i| i, |a, b| a + b);
        assert_eq!(total, 49 * 50 / 2);
        pool.par_for_each(10, |_| {});
        let mut buf = vec![0u8; 40];
        pool.par_for_chunks(&mut buf, 16, |_, chunk| {
            for b in chunk.iter_mut() {
                *b = 1;
            }
        });
        le_obs::trace_instant!("req.done");
    }
}

#[test]
fn canonical_timeline_is_identical_across_thread_counts() {
    le_obs::trace::set_enabled(true);
    let mut runs: Vec<(usize, usize, u64, String)> = Vec::new();
    for threads in [1usize, 4, 7] {
        le_obs::trace::reset();
        let pool = Pool::with_threads(threads);
        workload(&pool);
        drop(pool); // join workers: the journal is quiescent before snapshot
        let snap = le_obs::trace::snapshot();
        runs.push((
            threads,
            snap.events.len(),
            snap.dropped,
            snap.to_canonical_text("det"),
        ));
    }
    let (_, n0, d0, ref text0) = runs[0];
    assert!(n0 > 0, "workload must record events");
    assert_eq!(d0, 0, "workload must fit the ring");
    // Expected structure per `req` root: 25 map chunks (⌈100/⌈100/32⌉⌉) +
    // 7 reduce chunks + 10 for_each tasks + 3 for_chunks tasks = 45
    // `pool.task` spans + the root + one instant.
    // 3 roots × (46 spans × 2 events + 1 mark).
    assert_eq!(n0, 3 * (46 * 2 + 1), "decomposition changed — update test");
    for &(threads, n, dropped, ref text) in &runs[1..] {
        assert_eq!(n, n0, "event count differs at {threads} threads");
        assert_eq!(dropped, 0, "drops at {threads} threads");
        assert_eq!(
            text, text0,
            "canonical timeline differs at {threads} threads"
        );
    }
    // And the canonical text really collapses identical siblings.
    assert!(text0.contains("- req ×3"), "{text0}");
    assert!(text0.contains("- pool.task ×"), "{text0}");
    assert!(text0.contains("* req.done"), "{text0}");
}
