//! Snapshot diffing — the engine behind `obsctl diff`.
//!
//! Compares a *current* set of `OBS_*.json` / `BENCH_*.json` artifacts
//! against a committed *baseline* directory and reports regressions:
//!
//! * **Counters** are compared exactly — they are deterministic by
//!   construction (see the crate docs), so any delta (including a counter
//!   appearing or disappearing) means behavior changed and either a bug or
//!   a deliberate instrumentation change that must regenerate baselines.
//! * **Histogram** bucket counts are exact for the same reason.
//! * **Span counts and nesting depths** are exact; **span durations** and
//!   **bench medians** are machine-dependent, so they only regress when
//!   the current value exceeds the baseline by more than the tolerance
//!   (one-sided — getting faster never fails), and only above a floor
//!   (sub-floor measurements are noise).
//! * **Gauges** hold derived timing values (speedups); they are reported
//!   but never gate.
//!
//! Schedule-dependent instruments (`le_pool.queue_wait`-style: how many
//! workers woke in time for a job) can be excluded with
//! [`DiffOptions::ignore`] substrings.

use std::io;
use std::path::Path;

use crate::json::Value;
use crate::snapshot::{CounterSnap, GaugeSnap, HistogramSnap, Snapshot, SpanSnap};

/// Tunables for a diff run.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Allowed one-sided slowdown for span totals / bench medians, in
    /// percent of the baseline.
    pub tolerance_pct: f64,
    /// Span totals and bench medians below this baseline duration are not
    /// timing-gated (they are dominated by measurement noise).
    pub floor_ns: u64,
    /// Instruments whose name contains any of these substrings are
    /// skipped entirely (schedule-dependent metrics).
    pub ignore: Vec<String>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            tolerance_pct: 25.0,
            floor_ns: 1_000_000, // 1 ms
            ignore: Vec::new(),
        }
    }
}

impl DiffOptions {
    fn ignored(&self, name: &str) -> bool {
        self.ignore.iter().any(|p| name.contains(p))
    }
}

/// Outcome of one diff run.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Human-readable findings (regressions and informational notes).
    pub lines: Vec<String>,
    /// Number of failed checks.
    pub regressions: usize,
    /// Number of comparisons performed.
    pub checks: usize,
}

impl DiffReport {
    /// True when no check failed.
    pub fn is_clean(&self) -> bool {
        self.regressions == 0
    }

    fn fail(&mut self, msg: String) {
        self.regressions += 1;
        self.lines.push(format!("REGRESSION {msg}"));
    }

    fn note(&mut self, msg: String) {
        self.lines.push(format!("note       {msg}"));
    }

    /// Render the findings plus a one-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(&format!(
            "obsctl diff: {} regression(s) in {} check(s)\n",
            self.regressions, self.checks
        ));
        out
    }
}

/// Reconstruct a [`Snapshot`] from a parsed `OBS_*.json` document.
/// Returns `None` when the document does not have the snapshot shape.
pub fn parse_obs_snapshot(doc: &Value) -> Option<Snapshot> {
    let mut snap = Snapshot::default();
    for c in doc.get("counters")?.as_arr()? {
        snap.counters.push(CounterSnap {
            name: c.get("name")?.as_str()?.to_string(),
            value: c.get("value")?.as_f64()? as u64,
        });
    }
    for g in doc.get("gauges")?.as_arr()? {
        snap.gauges.push(GaugeSnap {
            name: g.get("name")?.as_str()?.to_string(),
            value: g.get("value")?.as_f64()?,
        });
    }
    for h in doc.get("histograms")?.as_arr()? {
        let bounds = h
            .get("bounds")?
            .as_arr()?
            .iter()
            .map(|b| b.as_f64())
            .collect::<Option<Vec<f64>>>()?;
        let counts = h
            .get("counts")?
            .as_arr()?
            .iter()
            .map(|c| c.as_f64().map(|v| v as u64))
            .collect::<Option<Vec<u64>>>()?;
        snap.histograms.push(HistogramSnap {
            name: h.get("name")?.as_str()?.to_string(),
            bounds,
            counts,
        });
    }
    for s in doc.get("spans")?.as_arr()? {
        snap.spans.push(SpanSnap {
            name: s.get("name")?.as_str()?.to_string(),
            count: s.get("count")?.as_f64()? as u64,
            total_ns: s.get("total_ns")?.as_f64()? as u64,
            min_ns: s.get("min_ns")?.as_f64()? as u64,
            max_ns: s.get("max_ns")?.as_f64()? as u64,
            max_depth: s.get("max_depth")?.as_f64()? as u64,
        });
    }
    Some(snap)
}

/// Extract `(entry name, median seconds)` pairs from a parsed
/// `BENCH_*.json` document.
pub fn parse_bench_medians(doc: &Value) -> Option<Vec<(String, f64)>> {
    let mut out = Vec::new();
    for e in doc.get("entries")?.as_arr()? {
        out.push((
            e.get("name")?.as_str()?.to_string(),
            e.get("median_s")?.as_f64()?,
        ));
    }
    Some(out)
}

/// Diff one OBS snapshot pair into `report`. `label` prefixes findings
/// (typically the file name).
pub fn diff_obs(
    label: &str,
    base: &Snapshot,
    cur: &Snapshot,
    opts: &DiffOptions,
    report: &mut DiffReport,
) {
    // Counters: exact, both directions.
    let mut names: Vec<&str> = base.counters.iter().map(|c| c.name.as_str()).collect();
    names.extend(cur.counters.iter().map(|c| c.name.as_str()));
    names.sort_unstable();
    names.dedup();
    for name in names {
        if opts.ignored(name) {
            continue;
        }
        report.checks += 1;
        match (base.counter(name), cur.counter(name)) {
            (Some(b), Some(c)) if b == c => {}
            (Some(b), Some(c)) => report.fail(format!(
                "{label}: counter `{name}` changed: baseline {b}, current {c}"
            )),
            (Some(b), None) => report.fail(format!(
                "{label}: counter `{name}` (baseline {b}) missing from current run"
            )),
            (None, Some(c)) => report.fail(format!(
                "{label}: counter `{name}` (current {c}) absent from baseline — \
                 regenerate baselines if the instrumentation changed"
            )),
            (None, None) => {}
        }
    }
    // Histograms: exact bucket counts.
    for bh in &base.histograms {
        if opts.ignored(&bh.name) {
            continue;
        }
        report.checks += 1;
        match cur.histogram(&bh.name) {
            None => report.fail(format!(
                "{label}: histogram `{}` missing from current run",
                bh.name
            )),
            Some(ch) => {
                let bounds_match = bh.bounds.len() == ch.bounds.len()
                    && bh
                        .bounds
                        .iter()
                        .zip(ch.bounds.iter())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                if !bounds_match {
                    report.fail(format!(
                        "{label}: histogram `{}` bounds changed",
                        bh.name
                    ));
                } else if bh.counts != ch.counts {
                    report.fail(format!(
                        "{label}: histogram `{}` bucket counts changed: \
                         baseline {:?}, current {:?}",
                        bh.name, bh.counts, ch.counts
                    ));
                }
            }
        }
    }
    // Spans: structure exact, duration gated one-sided with tolerance.
    for bs in &base.spans {
        if opts.ignored(&bs.name) {
            continue;
        }
        report.checks += 1;
        let Some(cs) = cur.span(&bs.name) else {
            report.fail(format!("{label}: span `{}` missing from current run", bs.name));
            continue;
        };
        if bs.count != cs.count {
            report.fail(format!(
                "{label}: span `{}` count changed: baseline {}, current {}",
                bs.name, bs.count, cs.count
            ));
        }
        if bs.max_depth != cs.max_depth {
            report.fail(format!(
                "{label}: span `{}` max_depth changed: baseline {}, current {}",
                bs.name, bs.max_depth, cs.max_depth
            ));
        }
        if bs.total_ns >= opts.floor_ns {
            let limit = bs.total_ns as f64 * (1.0 + opts.tolerance_pct / 100.0);
            if (cs.total_ns as f64) > limit {
                report.fail(format!(
                    "{label}: span `{}` slowed beyond {:.0}% tolerance: \
                     baseline {:.3} ms, current {:.3} ms",
                    bs.name,
                    opts.tolerance_pct,
                    bs.total_ns as f64 / 1e6,
                    cs.total_ns as f64 / 1e6
                ));
            }
        }
    }
    // Gauges: informational only (derived timing values).
    for bg in &base.gauges {
        if opts.ignored(&bg.name) {
            continue;
        }
        if let Some(cv) = cur.gauge(&bg.name) {
            let rel = if bg.value.abs() > 1e-12 {
                (cv - bg.value) / bg.value * 100.0
            } else {
                0.0
            };
            if rel.abs() > opts.tolerance_pct {
                report.note(format!(
                    "{label}: gauge `{}` moved {rel:+.1}% (baseline {:.3e}, current {:.3e}) — \
                     gauges do not gate",
                    bg.name, bg.value, cv
                ));
            }
        }
    }
}

/// Diff one BENCH median list pair into `report`.
pub fn diff_bench(
    label: &str,
    base: &[(String, f64)],
    cur: &[(String, f64)],
    opts: &DiffOptions,
    report: &mut DiffReport,
) {
    let floor_s = opts.floor_ns as f64 * 1e-9;
    for (name, bm) in base {
        if opts.ignored(name) {
            continue;
        }
        report.checks += 1;
        let Some((_, cm)) = cur.iter().find(|(n, _)| n == name) else {
            report.fail(format!("{label}: bench entry `{name}` missing from current run"));
            continue;
        };
        if *bm >= floor_s && *cm > *bm * (1.0 + opts.tolerance_pct / 100.0) {
            report.fail(format!(
                "{label}: bench `{name}` median slowed beyond {:.0}% tolerance: \
                 baseline {:.3e} s, current {:.3e} s",
                opts.tolerance_pct, bm, cm
            ));
        }
    }
}

/// Diff every `OBS_*.json` / `BENCH_*.json` in `baseline_dir` against the
/// file of the same name in `current_dir`. A baseline file whose current
/// counterpart is missing or unparseable is a regression.
pub fn diff_dirs(
    baseline_dir: &Path,
    current_dir: &Path,
    opts: &DiffOptions,
) -> io::Result<DiffReport> {
    let mut report = DiffReport::default();
    let mut names: Vec<String> = std::fs::read_dir(baseline_dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| {
            (n.starts_with("OBS_") || n.starts_with("BENCH_")) && n.ends_with(".json")
        })
        .collect();
    names.sort();
    if names.is_empty() {
        report.fail(format!(
            "no OBS_*.json / BENCH_*.json baselines under {}",
            baseline_dir.display()
        ));
        return Ok(report);
    }
    for name in names {
        let base_body = std::fs::read_to_string(baseline_dir.join(&name))?;
        let cur_path = current_dir.join(&name);
        report.checks += 1;
        let Ok(cur_body) = std::fs::read_to_string(&cur_path) else {
            report.fail(format!(
                "{name}: current artifact missing ({}) — run the workload first",
                cur_path.display()
            ));
            continue;
        };
        let (Some(base_doc), Some(cur_doc)) =
            (crate::json::parse(&base_body), crate::json::parse(&cur_body))
        else {
            report.fail(format!("{name}: unparseable JSON artifact"));
            continue;
        };
        if name.starts_with("OBS_") {
            match (
                parse_obs_snapshot(&base_doc),
                parse_obs_snapshot(&cur_doc),
            ) {
                (Some(b), Some(c)) => diff_obs(&name, &b, &c, opts, &mut report),
                _ => report.fail(format!("{name}: not an OBS snapshot document")),
            }
        } else {
            match (parse_bench_medians(&base_doc), parse_bench_medians(&cur_doc)) {
                (Some(b), Some(c)) => diff_bench(&name, &b, &c, opts, &mut report),
                _ => report.fail(format!("{name}: not a BENCH document")),
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![
                CounterSnap {
                    name: "hybrid.lookups".into(),
                    value: 100,
                },
                CounterSnap {
                    name: "hybrid.simulations".into(),
                    value: 20,
                },
            ],
            gauges: vec![GaugeSnap {
                name: "speedup".into(),
                value: 3.0,
            }],
            histograms: vec![HistogramSnap {
                name: "sched.latency.learnt".into(),
                bounds: vec![1.0, 10.0],
                counts: vec![5, 3, 1],
            }],
            spans: vec![SpanSnap {
                name: "mdsim.step".into(),
                count: 400,
                total_ns: 80_000_000,
                min_ns: 100_000,
                max_ns: 500_000,
                max_depth: 2,
            }],
        }
    }

    fn run_diff(base: &Snapshot, cur: &Snapshot, opts: &DiffOptions) -> DiffReport {
        let mut r = DiffReport::default();
        diff_obs("OBS_t.json", base, cur, opts, &mut r);
        r
    }

    #[test]
    fn identical_snapshots_are_clean() {
        let b = base_snapshot();
        let r = run_diff(&b, &b.clone(), &DiffOptions::default());
        assert!(r.is_clean(), "{}", r.to_text());
        assert!(r.checks > 0);
    }

    #[test]
    fn detects_off_by_one_counter_delta() {
        let b = base_snapshot();
        let mut c = b.clone();
        c.counters[0].value = 101; // injected off-by-one
        let r = run_diff(&b, &c, &DiffOptions::default());
        assert_eq!(r.regressions, 1, "{}", r.to_text());
        assert!(r.to_text().contains("hybrid.lookups"));
    }

    #[test]
    fn detects_ten_percent_span_time_regression() {
        let b = base_snapshot();
        let mut c = b.clone();
        c.spans[0].total_ns = (b.spans[0].total_ns as f64 * 1.10) as u64; // +10%
        let opts = DiffOptions {
            tolerance_pct: 5.0,
            ..DiffOptions::default()
        };
        let r = run_diff(&b, &c, &opts);
        assert_eq!(r.regressions, 1, "{}", r.to_text());
        assert!(r.to_text().contains("slowed beyond"));
        // Within tolerance passes.
        let mut ok = b.clone();
        ok.spans[0].total_ns = (b.spans[0].total_ns as f64 * 1.04) as u64;
        assert!(run_diff(&b, &ok, &opts).is_clean());
        // Faster never fails (one-sided gate).
        let mut fast = b.clone();
        fast.spans[0].total_ns /= 2;
        assert!(run_diff(&b, &fast, &opts).is_clean());
    }

    #[test]
    fn span_structure_changes_are_exact() {
        let b = base_snapshot();
        let mut c = b.clone();
        c.spans[0].count += 1;
        assert_eq!(run_diff(&b, &c, &DiffOptions::default()).regressions, 1);
        let mut d = b.clone();
        d.spans[0].max_depth = 3;
        assert_eq!(run_diff(&b, &d, &DiffOptions::default()).regressions, 1);
    }

    #[test]
    fn missing_and_extra_instruments_fail() {
        let b = base_snapshot();
        let mut c = b.clone();
        c.counters.remove(1);
        assert_eq!(run_diff(&b, &c, &DiffOptions::default()).regressions, 1);
        let mut d = b.clone();
        d.counters.push(CounterSnap {
            name: "new.counter".into(),
            value: 1,
        });
        assert_eq!(run_diff(&b, &d, &DiffOptions::default()).regressions, 1);
    }

    #[test]
    fn histogram_bucket_changes_fail() {
        let b = base_snapshot();
        let mut c = b.clone();
        c.histograms[0].counts[1] += 1;
        assert_eq!(run_diff(&b, &c, &DiffOptions::default()).regressions, 1);
    }

    #[test]
    fn ignore_list_skips_schedule_dependent_metrics() {
        let b = base_snapshot();
        let mut c = b.clone();
        c.counters[0].value = 999;
        let opts = DiffOptions {
            ignore: vec!["hybrid.lookups".into()],
            ..DiffOptions::default()
        };
        assert!(run_diff(&b, &c, &opts).is_clean());
    }

    #[test]
    fn sub_floor_spans_are_not_timing_gated() {
        let mut b = base_snapshot();
        b.spans[0].total_ns = 1_000; // 1 µs, below the 1 ms floor
        let mut c = b.clone();
        c.spans[0].total_ns = 900_000; // 900× slower but still noise-scale
        assert!(run_diff(&b, &c, &DiffOptions::default()).is_clean());
    }

    #[test]
    fn gauges_note_but_never_gate() {
        let b = base_snapshot();
        let mut c = b.clone();
        c.gauges[0].value = 30.0;
        let r = run_diff(&b, &c, &DiffOptions::default());
        assert!(r.is_clean());
        assert!(r.to_text().contains("gauges do not gate"));
    }

    #[test]
    fn obs_snapshot_round_trips_through_json() {
        let b = base_snapshot();
        let json = b.to_json("unit");
        let doc = crate::json::parse(&json).unwrap();
        let back = parse_obs_snapshot(&doc).unwrap();
        let r = run_diff(&b, &back, &DiffOptions::default());
        assert!(r.is_clean(), "{}", r.to_text());
        assert_eq!(back.counters.len(), 2);
        assert_eq!(back.spans[0].total_ns, 80_000_000);
    }

    #[test]
    fn bench_median_regression_detected() {
        let base = vec![("grp/a".to_string(), 2.0e-3), ("grp/b".to_string(), 3.0e-3)];
        let mut cur = base.clone();
        cur[0].1 = 2.4e-3; // +20%
        let opts = DiffOptions {
            tolerance_pct: 10.0,
            ..DiffOptions::default()
        };
        let mut r = DiffReport::default();
        diff_bench("BENCH_t.json", &base, &cur, &opts, &mut r);
        assert_eq!(r.regressions, 1, "{}", r.to_text());
        let mut r2 = DiffReport::default();
        diff_bench("BENCH_t.json", &base, &base.clone(), &opts, &mut r2);
        assert!(r2.is_clean());
    }

    #[test]
    fn diff_dirs_end_to_end_with_fixtures() {
        let root = std::env::temp_dir().join(format!(
            "le_obs_diff_test_{}",
            std::process::id()
        ));
        let basedir = root.join("baselines");
        let curdir = root.join("current");
        std::fs::create_dir_all(&basedir).unwrap();
        std::fs::create_dir_all(&curdir).unwrap();
        let snap = base_snapshot();
        std::fs::write(basedir.join("OBS_fix.json"), snap.to_json("fix")).unwrap();
        // Current run with an off-by-one counter and a 10% span slowdown.
        let mut bad = snap.clone();
        bad.counters[1].value += 1;
        bad.spans[0].total_ns = (snap.spans[0].total_ns as f64 * 1.10) as u64;
        std::fs::write(curdir.join("OBS_fix.json"), bad.to_json("fix")).unwrap();
        let opts = DiffOptions {
            tolerance_pct: 5.0,
            ..DiffOptions::default()
        };
        let r = diff_dirs(&basedir, &curdir, &opts).unwrap();
        assert_eq!(r.regressions, 2, "{}", r.to_text());
        // Clean current passes.
        std::fs::write(curdir.join("OBS_fix.json"), snap.to_json("fix")).unwrap();
        let r = diff_dirs(&basedir, &curdir, &opts).unwrap();
        assert!(r.is_clean(), "{}", r.to_text());
        // Missing current artifact fails.
        std::fs::remove_file(curdir.join("OBS_fix.json")).unwrap();
        let r = diff_dirs(&basedir, &curdir, &opts).unwrap();
        assert_eq!(r.regressions, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_baseline_dir_is_a_regression() {
        let root = std::env::temp_dir().join(format!(
            "le_obs_diff_empty_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&root).unwrap();
        let r = diff_dirs(&root, &root, &DiffOptions::default()).unwrap();
        assert!(!r.is_clean());
        let _ = std::fs::remove_dir_all(&root);
    }
}
