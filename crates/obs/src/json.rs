//! A minimal JSON reader for the workspace's own artifacts.
//!
//! The harness writes `BENCH_*.json`, `le-obs` writes `OBS_*.json` and
//! `TRACE_*.json`; this module parses them back so tests and the `obsctl`
//! regression gate can round-trip the documents without an external JSON
//! dependency. It accepts standard JSON (objects, arrays, strings with the
//! common escapes, numbers, booleans, null) — enough for any document this
//! workspace produces. It lives in `le-obs` (the lowest layer) so both the
//! bench harness and `obsctl` can share it; `le_bench::json` re-exports it
//! under the old path.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (None for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a usize (rejects negatives and fractions).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64 { // lint:allow(float-hygiene): integrality check, not a tolerance comparison
            Some(n as usize)
        } else {
            None
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns `None` on any syntax error or trailing
/// garbage.
pub fn parse(doc: &str) -> Option<Value> {
    let bytes = doc.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => parse_str(b, pos).map(Value::Str),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Value::Null),
        _ => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Option<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(v)
    } else {
        None
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Value::Num)
}

fn parse_str(b: &[u8], pos: &mut usize) -> Option<String> {
    if *b.get(*pos)? != b'"' {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let ch = rest.chars().next()?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Option<Value> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if *b.get(*pos)? == b']' {
        *pos += 1;
        return Some(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Option<Value> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if *b.get(*pos)? == b'}' {
        *pos += 1;
        return Some(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if *b.get(*pos)? != b':' {
            return None;
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Value::Obj(members));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Some(Value::Null));
        assert_eq!(parse("true"), Some(Value::Bool(true)));
        assert_eq!(parse("false"), Some(Value::Bool(false)));
        assert_eq!(parse("-1.5e3"), Some(Value::Num(-1500.0)));
        assert_eq!(parse("\"hi\""), Some(Value::Str("hi".into())));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn parses_every_named_escape_and_unicode() {
        let v = parse(r#""\"\\\/\n\r\t\b\f\u0041\u00e9\u2713""#).unwrap();
        assert_eq!(v.as_str(), Some("\"\\/\n\r\t\u{8}\u{c}Aé✓"));
        // Escapes inside object keys work too.
        let v = parse(r#"{"a\nb": 1}"#).unwrap();
        assert_eq!(v.get("a\nb").and_then(Value::as_f64), Some(1.0));
        // Raw multi-byte UTF-8 passes through unescaped.
        assert_eq!(parse("\"π≈3\"").unwrap().as_str(), Some("π≈3"));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "x"}], "c": {"d": null}}"#;
        let v = parse(doc).unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&Value::Null));
    }

    #[test]
    fn parses_deeply_nested_mixed_structures() {
        let doc = r#"[[[{"k": [{"deep": [0, [1, [2]]]}]}]], {}, []]"#;
        let v = parse(doc).unwrap();
        let outer = v.as_arr().unwrap();
        assert_eq!(outer.len(), 3);
        let deep = outer[0].as_arr().unwrap()[0].as_arr().unwrap()[0]
            .get("k")
            .and_then(Value::as_arr)
            .unwrap()[0]
            .get("deep")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(deep[0].as_f64(), Some(0.0));
        assert_eq!(outer[1], Value::Obj(vec![]));
        assert_eq!(outer[2], Value::Arr(vec![]));
        // Object member insertion order is preserved.
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match v {
            Value::Obj(ms) => assert_eq!(ms[0].0, "z"),
            _ => assert!(false, "expected object"),
        }
    }

    #[test]
    fn numeric_edge_cases() {
        // Negative zero keeps its sign bit.
        let nz = parse("-0.0").unwrap().as_f64().unwrap();
        assert_eq!(nz.to_bits(), (-0.0f64).to_bits());
        // Exponent forms, as the snapshot writer's `{:e}` emits them.
        assert_eq!(parse("2.5e-3").unwrap().as_f64(), Some(0.0025));
        assert_eq!(parse("1E+2").unwrap().as_f64(), Some(100.0));
        assert_eq!(parse("5e0").unwrap().as_f64(), Some(5.0));
        assert_eq!(parse("1e308").unwrap().as_f64(), Some(1e308));
        // i64::MIN is exactly representable as f64 (−2^63).
        assert_eq!(
            parse("-9223372036854775808").unwrap().as_f64(),
            Some(i64::MIN as f64)
        );
        // i64::MAX is not: values round to the nearest f64 — documented
        // lossiness of the Num(f64) representation.
        assert_eq!(
            parse("9223372036854775807").unwrap().as_f64(),
            Some(9223372036854775807u64 as f64)
        );
        // 2^53 + 1 rounds down to 2^53: callers must not rely on exact
        // integers beyond f64's 53-bit mantissa.
        assert_eq!(parse("9007199254740993").unwrap().as_f64(), Some(9.007199254740992e15));
        // Everything the workspace writes (ns counts < 2^53) is exact.
        assert_eq!(parse("9007199254740992").unwrap().as_usize(), Some(1usize << 53));
    }

    #[test]
    fn rejects_malformed_documents() {
        // One entry per failure class: truncation, missing separators,
        // bad literals, bad numbers, bad escapes, trailing garbage.
        let table: &[(&str, &str)] = &[
            ("", "empty document"),
            ("{", "unterminated object"),
            ("[1,", "unterminated array"),
            ("[1 2]", "missing array comma"),
            ("{\"a\" 1}", "missing colon"),
            ("{\"a\":}", "missing member value"),
            ("{a: 1}", "unquoted key"),
            ("{]}", "mismatched brackets"),
            ("\"unterminated", "unterminated string"),
            ("nul", "truncated null literal"),
            ("tru", "truncated true literal"),
            ("falsy", "mangled false literal"),
            ("+", "sign with no digits"),
            ("--1", "double sign"),
            ("1e", "exponent with no digits"),
            ("1.2.3", "two decimal points"),
            ("\"\\x\"", "unknown escape"),
            ("\"\\u12\"", "short unicode escape"),
            ("\"\\ud800\"", "lone surrogate code point"),
            ("1 2", "trailing garbage"),
            ("{} []", "second document"),
        ];
        for (bad, why) in table {
            assert_eq!(parse(bad), None, "should reject {bad:?} ({why})");
        }
    }

    #[test]
    fn as_usize_rejects_non_integers() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]"), Some(Value::Arr(vec![])));
        assert_eq!(parse("{}"), Some(Value::Obj(vec![])));
    }
}
