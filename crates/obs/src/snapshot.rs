//! Immutable snapshots of a [`Registry`] and their JSON/text renderings.
//!
//! Snapshots list every instrument in lexicographic name order and merge
//! shards in ascending shard index, so the *content* of a snapshot is
//! deterministic: two snapshots of the same workload differ only in
//! duration fields (`total_ns`, `min_ns`, `max_ns`, gauge seconds).

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::registry::Registry;

/// A counter's name and merged total at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    /// Registered name.
    pub name: String,
    /// Merged total over all shards.
    pub value: u64,
}

/// A gauge's name and value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnap {
    /// Registered name.
    pub name: String,
    /// Last written value (0.0 before the first set).
    pub value: f64,
}

/// A histogram's bounds and merged bucket counts at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnap {
    /// Registered name.
    pub name: String,
    /// Sanitized upper bounds; `counts` has one extra overflow bucket.
    pub bounds: Vec<f64>,
    /// Merged per-bucket counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
}

impl HistogramSnap {
    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }
}

/// A span's merged statistics at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnap {
    /// Registered name.
    pub name: String,
    /// Times recorded.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
    /// Shortest single record in ns (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest single record in ns.
    pub max_ns: u64,
    /// Deepest nesting level recorded (1 = top level; 0 if never recorded).
    pub max_depth: u64,
}

impl SpanSnap {
    /// Total recorded seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }

    /// Mean record duration in seconds (0.0 when `count == 0`).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs() / self.count as f64
        }
    }
}

/// An immutable, name-sorted snapshot of one registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, lexicographic by name.
    pub counters: Vec<CounterSnap>,
    /// All gauges, lexicographic by name.
    pub gauges: Vec<GaugeSnap>,
    /// All histograms, lexicographic by name.
    pub histograms: Vec<HistogramSnap>,
    /// All spans, lexicographic by name.
    pub spans: Vec<SpanSnap>,
}

impl Snapshot {
    /// The merged value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The gauge `name`'s value, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The span `name`, if registered.
    pub fn span(&self, name: &str) -> Option<&SpanSnap> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Render as JSON. Hand-rolled (the workspace is dependency-free):
    /// instruments appear in the same lexicographic order as the fields of
    /// this struct, strings are escaped, floats use `{:e}` scientific
    /// notation (round-trippable via `str::parse::<f64>`).
    pub fn to_json(&self, run: &str) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"run\": \"{}\",", escape(run));
        out.push_str("  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"value\": {}}}",
                escape(&c.name),
                c.value
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"value\": {}}}",
                escape(&g.name),
                json_f64(g.value)
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let bounds: Vec<String> = h.bounds.iter().map(|b| json_f64(*b)).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"bounds\": [{}], \"counts\": [{}], \"total\": {}}}",
                escape(&h.name),
                bounds.join(", "),
                counts.join(", "),
                h.total()
            );
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"max_depth\": {}}}",
                escape(&s.name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
                s.max_depth
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render a human-oriented text summary (one instrument per line).
    pub fn to_text(&self, run: &str) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "OBS snapshot: {run}");
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<32} count={:<8} total={:.6}s mean={:.3e}s depth<={}",
                    s.name,
                    s.count,
                    s.total_secs(),
                    s.mean_secs(),
                    s.max_depth
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<32} {}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                let _ = writeln!(out, "  {:<32} {:e}", g.name, g.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                let buckets: Vec<String> = h
                    .bounds
                    .iter()
                    .map(|b| format!("{b:e}"))
                    .chain(std::iter::once("inf".to_string()))
                    .zip(h.counts.iter())
                    .map(|(b, c)| format!("<={b}:{c}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {:<32} total={} [{}]",
                    h.name,
                    h.total(),
                    buckets.join(" ")
                );
            }
        }
        out
    }
}

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number; non-finite values (not representable
/// in JSON) become 0 with a sign convention chosen never to occur in
/// practice (bounds are sanitized, gauges come from durations).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "0".to_string()
    }
}

/// Replace every character outside `[A-Za-z0-9_-]` so a run name cannot
/// escape the results directory.
pub(crate) fn sanitize_run(run: &str) -> String {
    let cleaned: String = run
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "run".to_string()
    } else {
        cleaned
    }
}

/// The workspace `results/` directory (compile-time relative to this
/// crate, so it works from any test or bench working directory).
pub(crate) fn results_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

impl Registry {
    /// Snapshot every instrument: shards merged in ascending shard index,
    /// instruments listed in lexicographic name order.
    pub fn snapshot(&self) -> Snapshot {
        self.with_inner(|counters, gauges, histograms, spans| Snapshot {
            counters: counters
                .iter()
                .map(|(name, c)| CounterSnap {
                    name: name.clone(),
                    value: c.value(),
                })
                .collect(),
            gauges: gauges
                .iter()
                .map(|(name, g)| GaugeSnap {
                    name: name.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: histograms
                .iter()
                .map(|(name, h)| HistogramSnap {
                    name: name.clone(),
                    bounds: h.bounds(),
                    counts: h.counts(),
                })
                .collect(),
            spans: spans
                .iter()
                .map(|(name, s)| {
                    let count = s.count();
                    SpanSnap {
                        name: name.clone(),
                        count,
                        total_ns: s.total_ns(),
                        min_ns: if count == 0 { 0 } else { s.min_ns_raw() },
                        max_ns: s.max_ns_raw(),
                        max_depth: s.max_depth(),
                    }
                })
                .collect(),
        })
    }

    /// Write this registry to `results/OBS_<run>.json` plus a text summary
    /// `results/OBS_<run>.txt`; returns the JSON path. The run name is
    /// sanitized to `[A-Za-z0-9_-]`. IO failures come back as `Err` — this
    /// never panics, so it is safe on error/teardown paths.
    pub fn write_snapshot(&self, run: &str) -> io::Result<PathBuf> {
        let snap = self.snapshot();
        let run = sanitize_run(run);
        let dir = results_dir();
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("OBS_{run}.json"));
        std::fs::write(&json_path, snap.to_json(&run))?;
        std::fs::write(dir.join(format!("OBS_{run}.txt")), snap.to_text(&run))?;
        Ok(json_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Registry {
        let reg = Registry::new();
        reg.counter("jobs").add(3);
        reg.gauge("speedup").set(2.5);
        let h = reg.histogram("lat", &[1.0, 10.0]);
        h.record(0.5);
        h.record(5.0);
        h.record(50.0);
        let s = reg.span("phase.sim");
        s.record_ns(100);
        s.record_ns(300);
        reg
    }

    #[test]
    fn snapshot_contents_and_lookups() {
        let snap = populated().snapshot();
        assert_eq!(snap.counter("jobs"), Some(3));
        assert_eq!(snap.counter("missing"), None);
        assert!((snap.gauge("speedup").unwrap_or(0.0) - 2.5).abs() < 1e-15);
        let h = snap.histogram("lat").map(|h| h.counts.clone());
        assert_eq!(h, Some(vec![1, 1, 1]));
        let s = snap.span("phase.sim");
        assert_eq!(s.map(|s| (s.count, s.total_ns, s.min_ns, s.max_ns)), Some((2, 400, 100, 300)));
    }

    #[test]
    fn empty_span_reports_zero_min() {
        let reg = Registry::new();
        let _ = reg.span("never");
        let snap = reg.snapshot();
        assert_eq!(
            snap.span("never").map(|s| (s.count, s.min_ns)),
            Some((0, 0)),
            "u64::MAX sentinel must not leak into snapshots"
        );
    }

    #[test]
    fn json_is_sorted_and_escaped() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").inc();
        reg.counter("needs \"escaping\"\n").inc();
        let json = reg.snapshot().to_json("unit");
        let pos_a = json.find("\"name\": \"a\"");
        let pos_b = json.find("\"name\": \"b\"");
        assert!(pos_a < pos_b, "counters must be name-sorted");
        assert!(json.contains("needs \\\"escaping\\\"\\n"));
        assert!(json.contains("\"run\": \"unit\""));
    }

    #[test]
    fn text_summary_mentions_every_instrument() {
        let text = populated().snapshot().to_text("unit");
        for needle in ["jobs", "speedup", "lat", "phase.sim"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn run_names_are_sanitized() {
        assert_eq!(sanitize_run("bench/cell list"), "bench_cell_list");
        assert_eq!(sanitize_run("../evil"), "___evil");
        assert_eq!(sanitize_run(""), "run");
    }

    #[test]
    fn write_snapshot_round_trips_to_disk() {
        let reg = populated();
        let path = match reg.write_snapshot("obs unit test") {
            Ok(p) => p,
            Err(e) => {
                assert!(false, "write_snapshot failed: {e}");
                return;
            }
        };
        assert!(path.ends_with("OBS_obs_unit_test.json"));
        let body = std::fs::read_to_string(&path).unwrap_or_default();
        assert!(body.contains("\"jobs\""));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("txt"));
    }
}
