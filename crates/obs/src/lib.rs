#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `le-obs` — the workspace's zero-dependency observability layer.
//!
//! The paper's effective-speedup accounting (§III-D) only means something
//! if wall-clock can be attributed to the right phase — simulate vs. train
//! vs. infer vs. schedule. This crate is the single place where the
//! workspace reads the wall clock (enforced by le-lint's `wallclock` rule):
//! every other crate records timings through the guard APIs here, so phase
//! telemetry and speedup accounting are fed by the *same* measurement and
//! cannot disagree.
//!
//! # Instruments
//!
//! * **Spans** ([`Span`], [`span!`], [`timed_span!`]) — hierarchical RAII
//!   timers. A [`SpanGuard`] records duration, call count, min/max, and the
//!   maximum nesting depth at which the span ran; a [`TimedSpan`] also
//!   *returns* the elapsed seconds so callers (the hybrid engine's
//!   accounting) consume the identical measurement that lands in telemetry.
//! * **Counters** ([`Counter`], [`counter!`]) — monotonic `u64` event
//!   counts.
//! * **Gauges** ([`Gauge`]) — last-write-wins `f64` values.
//! * **Histograms** ([`Histogram`]) — fixed-bucket `u64` counts over
//!   caller-supplied upper bounds (used for simulated-time latency
//!   distributions in `le-sched`).
//!
//! # Determinism by construction
//!
//! Every instrument stores its data in a fixed array of per-thread-shard
//! atomic cells; threads are assigned shard indices round-robin on first
//! use, and snapshots merge shards in ascending shard-index order. All
//! merged quantities are integers (counts, nanoseconds), so merging is
//! exact and order-independent: counter values and histogram bucket counts
//! are bit-identical at any `LE_POOL_THREADS` setting — only durations
//! vary run to run. Snapshot output lists metrics in lexicographic name
//! order, so two snapshots of the same workload differ only in duration
//! fields.
//!
//! # Cost model
//!
//! Recording is allocation-free: handles are registered once (the macros
//! cache them in a `OnceLock`) and each record is one or two relaxed
//! atomic RMWs on a pre-registered cell. When disabled via `LE_OBS=0`
//! every record degenerates to a single relaxed load and a branch, and
//! span guards never read the clock.
//!
//! # Export
//!
//! [`write_snapshot`] renders the global registry to
//! `results/OBS_<run>.json` (plus a `results/OBS_<run>.txt` text summary)
//! at the workspace root — next to the `BENCH_*.json` files the timing
//! harness writes.
//!
//! # Causal tracing
//!
//! The aggregate instruments above lose *which* call caused which: for
//! that, the [`trace`] module keeps a per-thread event journal with
//! `trace_id`/`parent_span_id` causal links ([`trace_root!`],
//! [`trace_span!`], [`trace_instant!`]), propagated across threads by
//! `le-pool`, and exported as Chrome `trace_event` JSON
//! (`results/TRACE_<run>.json`, loadable in Perfetto) plus a
//! deterministic canonical timeline. The `obsctl` binary in this crate
//! renders either artifact and gates regressions (`obsctl diff`).

pub mod diff;
pub mod json;
mod registry;
mod snapshot;
mod span;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, Registry, Span};
pub use snapshot::{CounterSnap, GaugeSnap, HistogramSnap, Snapshot, SpanSnap};
pub use span::{current_depth, SpanGuard, Stopwatch, TimedSpan};
pub use trace::write_trace;

use std::sync::OnceLock;

/// The process-global registry. Created on first use; enabled unless the
/// `LE_OBS` environment variable is set to `0`, `false`, or `off` (read
/// once, at creation). Tests flip recording with [`Registry::set_enabled`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let disabled = matches!(
            std::env::var("LE_OBS").ok().as_deref().map(str::trim),
            Some("0") | Some("false") | Some("off")
        );
        Registry::with_enabled(!disabled)
    })
}

/// Snapshot the global registry (sorted, deterministic content — see the
/// crate docs).
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Write the global registry to `results/OBS_<run>.json` (and a text
/// summary `results/OBS_<run>.txt`) at the workspace root. Returns the
/// JSON path. Never panics; IO problems come back as `Err`.
pub fn write_snapshot(run: &str) -> std::io::Result<std::path::PathBuf> {
    global().write_snapshot(run)
}

/// Enter a span on the global registry: `let _g = le_obs::span!("x.y");`.
///
/// The handle is registered once per call site and cached in a static;
/// subsequent hits cost one atomic load before the guard is created. The
/// guard records on drop; when recording is disabled it never reads the
/// clock.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __LE_OBS_SPAN: ::std::sync::OnceLock<$crate::Span> = ::std::sync::OnceLock::new();
        __LE_OBS_SPAN
            .get_or_init(|| $crate::global().span($name))
            .enter()
    }};
}

/// Enter an always-timing span on the global registry. Unlike [`span!`],
/// the returned [`TimedSpan`] reads the clock even when recording is
/// disabled, because its caller consumes the measurement:
/// `let sp = le_obs::timed_span!("hybrid.simulate"); …;
/// accounting.record(sp.finish_secs());`. It records to the registry only
/// on [`TimedSpan::finish_secs`] — a guard dropped on an error path leaves
/// no trace, exactly like the accounting it feeds.
#[macro_export]
macro_rules! timed_span {
    ($name:expr) => {{
        static __LE_OBS_SPAN: ::std::sync::OnceLock<$crate::Span> = ::std::sync::OnceLock::new();
        __LE_OBS_SPAN
            .get_or_init(|| $crate::global().span($name))
            .enter_timed()
    }};
}

/// A cached counter handle on the global registry:
/// `le_obs::counter!("le_pool.jobs").inc();`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __LE_OBS_COUNTER: ::std::sync::OnceLock<$crate::Counter> =
            ::std::sync::OnceLock::new();
        __LE_OBS_COUNTER.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Open a **root** trace span: a fresh `trace_id` starts here, and every
/// span/instant recorded below it (on any thread, via `le-pool`'s context
/// propagation) carries that id. `let _t = le_obs::trace_root!("hybrid.query");`
///
/// The interned name id is cached per call site; the guard records a
/// `Begin` event now and an `End` event on drop. Inert under `LE_OBS=0`.
#[macro_export]
macro_rules! trace_root {
    ($name:expr) => {{
        static __LE_TRACE_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        $crate::trace::enter_span(
            *__LE_TRACE_NAME.get_or_init(|| $crate::trace::intern_name($name)),
            true,
        )
    }};
}

/// Open a child trace span under the current thread context (or a new
/// root if none is open): `let _t = le_obs::trace_span!("hybrid.simulate");`
/// Records `Begin` now, `End` on drop; inert under `LE_OBS=0`.
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {{
        static __LE_TRACE_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        $crate::trace::enter_span(
            *__LE_TRACE_NAME.get_or_init(|| $crate::trace::intern_name($name)),
            false,
        )
    }};
}

/// Record an instant event under the current span:
/// `le_obs::trace_instant!("sched.task.complete");` Inert under `LE_OBS=0`.
#[macro_export]
macro_rules! trace_instant {
    ($name:expr) => {{
        static __LE_TRACE_NAME: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
        $crate::trace::mark(*__LE_TRACE_NAME.get_or_init(|| $crate::trace::intern_name($name)))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }

    #[test]
    fn macros_register_and_record() {
        let c = counter!("le_obs.test.macro_counter");
        let before = c.value();
        c.inc();
        c.add(2);
        assert_eq!(c.value(), before + 3);
        {
            let _g = span!("le_obs.test.macro_span");
        }
        let snap = snapshot();
        assert!(snap.span("le_obs.test.macro_span").is_some());
        assert!(snap.counter("le_obs.test.macro_counter").is_some());
    }

    #[test]
    fn timed_span_returns_elapsed_even_when_disabled() {
        let reg = Registry::with_enabled(false);
        let sp = reg.span("t");
        let guard = sp.enter_timed();
        let secs = guard.finish_secs();
        assert!(secs >= 0.0);
        assert_eq!(sp.count(), 0, "disabled registry must not record");
    }
}
