//! Span guards and the thread-local nesting stack.
//!
//! This module (together with the bench harness's calibration loop) is the
//! only place in the workspace allowed to read the wall clock — the
//! le-lint `wallclock` rule enforces it. Everything downstream consumes
//! durations through these guards.

use std::cell::Cell;
use std::time::Instant;

use crate::registry::Span;

thread_local! {
    /// Current span nesting depth on this thread (0 = no open span).
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

/// The current span nesting depth on this thread (0 outside any span).
pub fn current_depth() -> u64 {
    DEPTH.with(|d| d.get())
}

/// Depth to stamp on a manual [`Span::record_ns`]: one below an enclosing
/// guard counts as entering a fresh level.
pub(crate) fn depth_for_record() -> u64 {
    DEPTH.with(|d| d.get()) + 1
}

fn push_depth() -> u64 {
    DEPTH.with(|d| {
        let v = d.get() + 1;
        d.set(v);
        v
    })
}

fn pop_depth() {
    DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
}

fn dur_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// RAII span timer: records duration/count/min/max/depth on drop. Created
/// by [`Span::enter`] / the [`crate::span!`] macro. When recording is
/// disabled the guard is inert and never reads the clock.
pub struct SpanGuard<'a> {
    active: Option<(&'a Span, Instant, u64)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((span, start, depth)) = self.active.take() {
            span.record_at_depth(dur_ns(start.elapsed()), depth);
            pop_depth();
        }
    }
}

/// An always-timing span guard whose measurement the caller consumes:
/// [`TimedSpan::finish_secs`] records to the registry (when enabled) and
/// returns the elapsed seconds, so telemetry and the caller's accounting
/// share one clock read. Dropping without `finish_secs` (an error path)
/// records nothing.
pub struct TimedSpan<'a> {
    span: &'a Span,
    start: Instant,
    /// `Some(depth)` while this guard holds a slot on the nesting stack
    /// (only when recording was enabled at entry).
    depth: Option<u64>,
}

impl<'a> TimedSpan<'a> {
    /// Stop the clock, record (when enabled), and return elapsed seconds.
    pub fn finish_secs(self) -> f64 {
        let elapsed = self.start.elapsed();
        if let Some(depth) = self.depth {
            self.span.record_at_depth(dur_ns(elapsed), depth);
        }
        elapsed.as_secs_f64()
        // `self` drops here, popping the nesting stack.
    }
}

impl Drop for TimedSpan<'_> {
    fn drop(&mut self) {
        if self.depth.take().is_some() {
            pop_depth();
        }
    }
}

impl Span {
    /// Enter this span; the returned guard records on drop. Inert (no
    /// clock read) when recording is disabled.
    pub fn enter(&self) -> SpanGuard<'_> {
        if !self.recording() {
            return SpanGuard { active: None };
        }
        let depth = push_depth();
        SpanGuard {
            active: Some((self, Instant::now(), depth)),
        }
    }

    /// Enter this span with a guard that always times (see [`TimedSpan`]).
    pub fn enter_timed(&self) -> TimedSpan<'_> {
        let depth = if self.recording() {
            Some(push_depth())
        } else {
            None
        };
        TimedSpan {
            span: self,
            start: Instant::now(),
            depth,
        }
    }
}

/// A bare wall-clock stopwatch for measurement helpers that have no span
/// name (e.g. `learning_everywhere::accounting::timed`). Keeping it here
/// keeps raw `Instant` reads inside `le-obs`.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start the clock.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Seconds since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Nanoseconds since [`Stopwatch::start`] (saturating), ready to feed
    /// [`crate::Span::record_ns`].
    pub fn elapsed_ns(&self) -> u64 {
        dur_ns(self.start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn guard_records_on_drop_and_tracks_depth() {
        let reg = Registry::new();
        let outer = reg.span("outer");
        let inner = reg.span("inner");
        assert_eq!(current_depth(), 0);
        {
            let _a = outer.enter();
            assert_eq!(current_depth(), 1);
            {
                let _b = inner.enter();
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 1);
        assert_eq!(outer.max_depth(), 1);
        assert_eq!(inner.max_depth(), 2);
        assert!(inner.total_ns() <= outer.total_ns());
    }

    #[test]
    fn disabled_guard_is_inert() {
        let reg = Registry::with_enabled(false);
        let s = reg.span("s");
        {
            let _g = s.enter();
            assert_eq!(current_depth(), 0, "disabled guard takes no depth slot");
        }
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn timed_span_records_only_on_finish() {
        let reg = Registry::new();
        let s = reg.span("s");
        {
            let _dropped = s.enter_timed();
            // dropped without finish_secs — an error path.
        }
        assert_eq!(s.count(), 0, "unfinished timed span leaves no trace");
        assert_eq!(current_depth(), 0);
        let g = s.enter_timed();
        let secs = g.finish_secs();
        assert!(secs >= 0.0);
        assert_eq!(s.count(), 1);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(b >= a && a >= 0.0);
    }
}
