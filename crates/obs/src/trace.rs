//! `le-trace` — the causal event journal behind the aggregate registry.
//!
//! The registry (see [`crate::Registry`]) answers "how much time went
//! where"; this module answers "*which* surrogate call triggered *which*
//! fallback simulation". Every [`crate::trace_root!`] /
//! [`crate::trace_span!`] guard appends begin/end events to a per-thread,
//! fixed-capacity journal; [`crate::trace_instant!`] appends point events.
//! Events carry a `trace_id` (the root request they belong to) and a
//! `parent_span_id` (the span they nest under), so one
//! surrogate-vs-simulate decision is reconstructable end to end — across
//! threads, because `le-pool` captures the submitting thread's
//! [`TraceCtx`] at dispatch and workers restore it with
//! [`TraceCtx::adopt`] before running claimed tasks.
//!
//! # Journal mechanics
//!
//! Each thread owns one append-only ring of `LE_TRACE_CAP` slots (default
//! 65536), registered with the global journal on first use. Recording is
//! lock-free and allocation-free: one relaxed atomic id allocation, one
//! monotonic-clock read, and five relaxed stores into pre-allocated
//! `AtomicU64` cells, published with a release store of the ring length —
//! well under the 100 ns/event budget. A full ring **drops** new events
//! and counts them ([`TraceSnapshot::dropped`]); it never blocks and never
//! overwrites, so the causal *prefix* of a run is always intact. Under
//! `LE_OBS=0` every guard is inert: no clock read, no id allocation, no
//! stores.
//!
//! # Determinism
//!
//! Timestamps and raw ids vary run to run, but the event *structure* —
//! how many spans, which parent each hangs from — is a pure function of
//! the workload: `le-pool`'s helpers decompose work independently of the
//! thread count and emit one `pool.task` span per task on both the inline
//! and the pooled path. [`TraceSnapshot::to_canonical_text`] renders that
//! structure with ids relabeled and siblings sorted, so two runs of the
//! same workload produce byte-identical timelines at any
//! `LE_POOL_THREADS`.
//!
//! # Export
//!
//! [`write_trace`] renders the journal to `results/TRACE_<run>.json` in
//! Chrome `trace_event` format (load it in Perfetto or `chrome://tracing`)
//! plus the canonical text timeline at `results/TRACE_<run>.txt`.

use std::cell::{Cell, OnceCell};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-thread journal capacity (events), overridable with the
/// `LE_TRACE_CAP` environment variable (read once, at journal creation).
pub const DEFAULT_CAP: usize = 65_536;

/// Event kinds stored in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in Chrome trace format).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point-in-time event (`ph: "i"`).
    Mark,
}

const KIND_BEGIN: u64 = 0;
const KIND_END: u64 = 1;
const KIND_MARK: u64 = 2;

/// The causal coordinates of the current span: which root request this
/// thread is working for (`trace_id`) and which span it is inside
/// (`span_id`). `Copy`, cheap to capture, and safe to ship across threads
/// — `le-pool` does exactly that at every dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Id of the root span of the enclosing request (0 = none).
    pub trace_id: u64,
    /// Id of the innermost open span (0 = none).
    pub span_id: u64,
}

impl TraceCtx {
    /// The empty context (no open span).
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
    };

    /// True when no span is open in this context.
    pub fn is_none(self) -> bool {
        self.trace_id == 0
    }

    /// Install this context as the current thread's context until the
    /// returned guard drops (which restores the previous context). This is
    /// how worker threads inherit the submitting thread's causal
    /// coordinates. Inert (and free) when journaling is disabled.
    pub fn adopt(self) -> AdoptGuard {
        if !journal().enabled() {
            return AdoptGuard { prev: None };
        }
        let prev = CUR.with(|c| c.replace(self));
        AdoptGuard { prev: Some(prev) }
    }
}

/// The current thread's trace context (the innermost open span). Use with
/// [`TraceCtx::adopt`] to propagate causality across a thread boundary.
pub fn current_ctx() -> TraceCtx {
    CUR.with(|c| c.get())
}

/// RAII guard restoring the previous thread context; see
/// [`TraceCtx::adopt`].
pub struct AdoptGuard {
    prev: Option<TraceCtx>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CUR.with(|c| c.set(prev));
        }
    }
}

thread_local! {
    /// The innermost open span on this thread.
    static CUR: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
    /// This thread's ring, registered with the journal on first record.
    static RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

/// One journal slot: five atomics so recording needs no locks and
/// snapshotting a live journal tears at worst one in-flight event (the
/// length is published with a release store after the fields).
struct Slot {
    /// `kind << 32 | name_id`.
    meta: AtomicU64,
    /// Nanoseconds since the journal epoch.
    ts: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
}

/// One thread's append-only event buffer.
struct Ring {
    tid: u64,
    len: AtomicUsize,
    drops: AtomicU64,
    slots: Vec<Slot>,
}

impl Ring {
    fn new(tid: u64, cap: usize) -> Ring {
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(Slot {
                meta: AtomicU64::new(0),
                ts: AtomicU64::new(0),
                trace: AtomicU64::new(0),
                span: AtomicU64::new(0),
                parent: AtomicU64::new(0),
            });
        }
        Ring {
            tid,
            len: AtomicUsize::new(0),
            drops: AtomicU64::new(0),
            slots,
        }
    }

    /// Append one event. Only the owning thread stores; a full ring counts
    /// a drop and returns — never blocks, never overwrites.
    fn push(&self, kind: u64, name_id: u32, ts: u64, ctx: TraceCtx, parent: u64) {
        let at = self.len.load(Ordering::Relaxed);
        if at >= self.slots.len() {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[at];
        slot.meta.store(kind << 32 | name_id as u64, Ordering::Relaxed);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.trace.store(ctx.trace_id, Ordering::Relaxed);
        slot.span.store(ctx.span_id, Ordering::Relaxed);
        slot.parent.store(parent, Ordering::Relaxed);
        self.len.store(at + 1, Ordering::Release);
    }
}

/// The process-global journal: per-thread rings plus the interned name
/// table and the id allocator. Private by design — all mutation flows
/// through the guard macros (the le-lint `trace-hygiene` rule enforces
/// this outside `crates/obs`).
struct Journal {
    enabled: AtomicBool,
    cap: usize,
    epoch: OnceLock<Instant>,
    rings: Mutex<Vec<Arc<Ring>>>,
    names: Mutex<Vec<String>>,
    next_id: AtomicU64,
    next_tid: AtomicU64,
}

/// Recover a mutex guard even if a panicking thread poisoned it; every
/// critical section here is a few plain field updates.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

fn journal() -> &'static Journal {
    static JOURNAL: OnceLock<Journal> = OnceLock::new();
    JOURNAL.get_or_init(|| {
        let disabled = matches!(
            std::env::var("LE_OBS").ok().as_deref().map(str::trim),
            Some("0") | Some("false") | Some("off")
        );
        let cap = std::env::var("LE_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAP)
            .max(16);
        Journal {
            enabled: AtomicBool::new(!disabled),
            cap,
            epoch: OnceLock::new(),
            rings: Mutex::new(Vec::new()),
            names: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            next_tid: AtomicU64::new(1),
        }
    })
}

impl Journal {
    fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        let epoch = self.epoch.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Append to the calling thread's ring, registering it on first use.
    fn record(&'static self, kind: u64, name_id: u32, ctx: TraceCtx, parent: u64) {
        let ts = self.now_ns();
        RING.with(|cell| {
            let ring = cell.get_or_init(|| {
                let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
                let ring = Arc::new(Ring::new(tid, self.cap));
                relock(self.rings.lock()).push(Arc::clone(&ring));
                ring
            });
            ring.push(kind, name_id, ts, ctx, parent);
        });
    }
}

/// Whether journaling is currently on (`LE_OBS` gate or
/// [`set_enabled`]).
pub fn enabled() -> bool {
    journal().enabled()
}

/// Turn journaling on or off at runtime (tests, overhead smoke). The
/// steady-state cost when off is a single relaxed load per guard.
pub fn set_enabled(on: bool) {
    journal().enabled.store(on, Ordering::Relaxed);
}

/// Clear every thread's ring and drop counts (the interned name table and
/// cached name ids stay valid). Call only at quiescence — concurrent
/// recorders would interleave with the clear.
pub fn reset() {
    let rings = relock(journal().rings.lock());
    for ring in rings.iter() {
        ring.len.store(0, Ordering::Release);
        ring.drops.store(0, Ordering::Relaxed);
    }
}

/// Intern `name`, returning its stable id. The guard macros call this once
/// per call site and cache the id in a static.
pub fn intern_name(name: &str) -> u32 {
    let j = journal();
    let mut names = relock(j.names.lock());
    if let Some(i) = names.iter().position(|n| n == name) {
        return i as u32;
    }
    names.push(name.to_string());
    (names.len() - 1) as u32
}

/// A live span in the journal: records `Begin` on creation (see
/// [`enter_span`]) and `End` on drop, restoring the previous thread
/// context. Inert when journaling is disabled.
pub struct TraceSpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name_id: u32,
    ctx: TraceCtx,
    parent: u64,
    prev: TraceCtx,
}

impl TraceSpanGuard {
    /// The causal coordinates of this span ([`TraceCtx::NONE`] when the
    /// guard is inert).
    pub fn ctx(&self) -> TraceCtx {
        self.active.as_ref().map(|a| a.ctx).unwrap_or(TraceCtx::NONE)
    }
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            journal().record(KIND_END, a.name_id, a.ctx, a.parent);
            CUR.with(|c| c.set(a.prev));
        }
    }
}

/// Open a span (macro backend — use [`crate::trace_span!`] /
/// [`crate::trace_root!`]). With `root == true`, or when no span is open,
/// a fresh `trace_id` starts; otherwise the span becomes a child of the
/// current context.
pub fn enter_span(name_id: u32, root: bool) -> TraceSpanGuard {
    let j = journal();
    if !j.enabled() {
        return TraceSpanGuard { active: None };
    }
    let prev = CUR.with(|c| c.get());
    let (ctx, parent) = if root || prev.is_none() {
        let id = j.alloc_id();
        (
            TraceCtx {
                trace_id: id,
                span_id: id,
            },
            0,
        )
    } else {
        (
            TraceCtx {
                trace_id: prev.trace_id,
                span_id: j.alloc_id(),
            },
            prev.span_id,
        )
    };
    j.record(KIND_BEGIN, name_id, ctx, parent);
    CUR.with(|c| c.set(ctx));
    TraceSpanGuard {
        active: Some(ActiveSpan {
            name_id,
            ctx,
            parent,
            prev,
        }),
    }
}

/// Record a point event under the current span (macro backend — use
/// [`crate::trace_instant!`]).
pub fn mark(name_id: u32) {
    let j = journal();
    if !j.enabled() {
        return;
    }
    let cur = CUR.with(|c| c.get());
    j.record(KIND_MARK, name_id, cur, cur.span_id);
}

/// One exported event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Begin / End / Mark.
    pub kind: EventKind,
    /// Interned span or instant name.
    pub name: String,
    /// Nanoseconds since the journal epoch.
    pub ts_ns: u64,
    /// Stable per-thread id (registration order, 1-based).
    pub tid: u64,
    /// Root request id (0 = outside any trace).
    pub trace_id: u64,
    /// This span's id (for `Mark`: the enclosing span's id).
    pub span_id: u64,
    /// Parent span id (0 = root).
    pub parent_span_id: u64,
}

/// All recorded events, merged over threads, plus the drop count.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Events sorted by `(ts_ns, tid, per-thread order)` — per-thread
    /// order is always preserved, so Begin/End nesting stays valid per
    /// `tid`.
    pub events: Vec<TraceEvent>,
    /// Events lost to full rings.
    pub dropped: u64,
}

/// Snapshot the journal. Safe at any time; call at quiescence for an
/// exact image (a concurrently-recording thread contributes a prefix of
/// its events).
pub fn snapshot() -> TraceSnapshot {
    let j = journal();
    let names: Vec<String> = relock(j.names.lock()).clone();
    let rings: Vec<Arc<Ring>> = relock(j.rings.lock()).iter().map(Arc::clone).collect();
    let mut keyed: Vec<(u64, u64, usize, TraceEvent)> = Vec::new();
    let mut dropped = 0u64;
    for ring in &rings {
        dropped += ring.drops.load(Ordering::Relaxed);
        let len = ring.len.load(Ordering::Acquire).min(ring.slots.len());
        for (seq, slot) in ring.slots[..len].iter().enumerate() {
            let meta = slot.meta.load(Ordering::Relaxed);
            let name_id = (meta & 0xffff_ffff) as usize;
            let kind = match meta >> 32 {
                KIND_BEGIN => EventKind::Begin,
                KIND_END => EventKind::End,
                _ => EventKind::Mark,
            };
            let ts_ns = slot.ts.load(Ordering::Relaxed);
            keyed.push((
                ts_ns,
                ring.tid,
                seq,
                TraceEvent {
                    kind,
                    name: names
                        .get(name_id)
                        .cloned()
                        .unwrap_or_else(|| format!("name#{name_id}")),
                    ts_ns,
                    tid: ring.tid,
                    trace_id: slot.trace.load(Ordering::Relaxed),
                    span_id: slot.span.load(Ordering::Relaxed),
                    parent_span_id: slot.parent.load(Ordering::Relaxed),
                },
            ));
        }
    }
    keyed.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
    TraceSnapshot {
        events: keyed.into_iter().map(|(_, _, _, e)| e).collect(),
        dropped,
    }
}

impl TraceSnapshot {
    /// Render in Chrome `trace_event` JSON (the "JSON Array Format" with
    /// metadata), loadable in Perfetto / `chrome://tracing`. Timestamps
    /// are microseconds with nanosecond fraction; causal links ride in
    /// `args`.
    pub fn to_chrome_json(&self, run: &str) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 160);
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"otherData\": {{\"run\": \"{}\", \"dropped\": {}}},",
            escape(run),
            self.dropped
        );
        out.push_str("  \"displayTimeUnit\": \"ns\",\n");
        out.push_str("  \"traceEvents\": [");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let (ph, scope) = match e.kind {
                EventKind::Begin => ("B", ""),
                EventKind::End => ("E", ""),
                EventKind::Mark => ("i", ", \"s\": \"t\""),
            };
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"cat\": \"le\", \"ph\": \"{}\"{}, \"pid\": 1, \
                 \"tid\": {}, \"ts\": {}.{:03}, \"args\": {{\"trace_id\": {}, \"span_id\": {}, \
                 \"parent_span_id\": {}}}}}",
                escape(&e.name),
                ph,
                scope,
                e.tid,
                e.ts_ns / 1_000,
                e.ts_ns % 1_000,
                e.trace_id,
                e.span_id,
                e.parent_span_id
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render the order-normalized timeline: the span forest with ids
    /// relabeled, siblings sorted by structure, and identical sibling
    /// subtrees collapsed to one line with a `×N` count. No timestamps, no
    /// thread ids — two structurally identical runs (any thread count)
    /// produce byte-identical text.
    pub fn to_canonical_text(&self, run: &str) -> String {
        let forest = CanonNode::forest(&self.events);
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "TRACE canonical timeline: {run}");
        let _ = writeln!(
            out,
            "events={} dropped={}",
            self.events.len(),
            self.dropped
        );
        render_group(&forest, 0, &mut out);
        out
    }
}

/// A canonicalized span node: name, attached instants, children.
struct CanonNode {
    name: String,
    marks: Vec<String>,
    children: Vec<CanonNode>,
    /// Structural signature (name + sorted marks + sorted child sigs);
    /// computed bottom-up, used for sorting and ×N grouping.
    sig: String,
}

impl CanonNode {
    /// Build the canonical forest from raw events: nodes from `Begin`
    /// events, edges from `parent_span_id`, instants attached to their
    /// enclosing span. Orphans (parent outside the snapshot) become roots.
    fn forest(events: &[TraceEvent]) -> Vec<CanonNode> {
        use std::collections::BTreeMap;
        struct Raw {
            name: String,
            parent: u64,
            marks: Vec<String>,
            children: Vec<u64>,
        }
        let mut by_span: BTreeMap<u64, Raw> = BTreeMap::new();
        for e in events {
            match e.kind {
                EventKind::Begin => {
                    by_span.entry(e.span_id).or_insert(Raw {
                        name: e.name.clone(),
                        parent: e.parent_span_id,
                        marks: Vec::new(),
                        children: Vec::new(),
                    });
                }
                EventKind::Mark => {
                    if let Some(raw) = by_span.get_mut(&e.span_id) {
                        raw.marks.push(e.name.clone());
                    }
                }
                EventKind::End => {}
            }
        }
        let edges: Vec<(u64, u64)> = by_span.iter().map(|(&id, r)| (id, r.parent)).collect();
        for &(id, parent) in &edges {
            if parent != 0 {
                if let Some(p) = by_span.get_mut(&parent) {
                    p.children.push(id);
                }
            }
        }
        fn build(by_span: &BTreeMap<u64, Raw>, id: u64) -> CanonNode {
            let (name, mut marks, child_ids) = match by_span.get(&id) {
                Some(r) => (r.name.clone(), r.marks.clone(), r.children.clone()),
                None => (format!("span#{id}"), Vec::new(), Vec::new()),
            };
            marks.sort();
            let mut children: Vec<CanonNode> =
                child_ids.iter().map(|&c| build(by_span, c)).collect();
            children.sort_by(|a, b| a.sig.cmp(&b.sig));
            let mut sig = String::new();
            sig.push_str(&name);
            if !marks.is_empty() {
                sig.push('{');
                sig.push_str(&marks.join(","));
                sig.push('}');
            }
            sig.push('(');
            for c in &children {
                sig.push_str(&c.sig);
                sig.push(';');
            }
            sig.push(')');
            CanonNode {
                name,
                marks,
                children,
                sig,
            }
        }
        let root_ids: Vec<u64> = by_span
            .iter()
            .filter(|(_, r)| r.parent == 0 || !by_span.contains_key(&r.parent))
            .map(|(&id, _)| id)
            .collect();
        let mut roots: Vec<CanonNode> =
            root_ids.iter().map(|&id| build(&by_span, id)).collect();
        roots.sort_by(|a, b| a.sig.cmp(&b.sig));
        roots
    }
}

/// Render a sorted sibling group, collapsing equal signatures into `×N`.
fn render_group(nodes: &[CanonNode], depth: usize, out: &mut String) {
    let mut i = 0;
    while i < nodes.len() {
        let mut j = i + 1;
        while j < nodes.len() && nodes[j].sig == nodes[i].sig {
            j += 1;
        }
        let n = &nodes[i];
        let indent = "  ".repeat(depth);
        let count = if j - i > 1 {
            format!(" ×{}", j - i)
        } else {
            String::new()
        };
        let _ = writeln!(out, "{indent}- {}{count}", n.name);
        // Collapse equal marks the same way.
        let mut k = 0;
        while k < n.marks.len() {
            let mut m = k + 1;
            while m < n.marks.len() && n.marks[m] == n.marks[k] {
                m += 1;
            }
            let mc = if m - k > 1 {
                format!(" ×{}", m - k)
            } else {
                String::new()
            };
            let _ = writeln!(out, "{indent}  * {}{mc}", n.marks[k]);
            k = m;
        }
        render_group(&n.children, depth + 1, out);
        i = j;
    }
}

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Write the journal to `results/TRACE_<run>.json` (Chrome trace format)
/// plus `results/TRACE_<run>.txt` (canonical timeline); returns the JSON
/// path. Run names are sanitized like OBS snapshots; IO failures come
/// back as `Err` — never panics.
pub fn write_trace(run: &str) -> io::Result<PathBuf> {
    let snap = snapshot();
    let run = crate::snapshot::sanitize_run(run);
    let dir = crate::snapshot::results_dir();
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("TRACE_{run}.json"));
    std::fs::write(&json_path, snap.to_chrome_json(&run))?;
    std::fs::write(
        dir.join(format!("TRACE_{run}.txt")),
        snap.to_canonical_text(&run),
    )?;
    Ok(json_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        kind: EventKind,
        name: &str,
        ts_ns: u64,
        tid: u64,
        trace_id: u64,
        span_id: u64,
        parent: u64,
    ) -> TraceEvent {
        TraceEvent {
            kind,
            name: name.into(),
            ts_ns,
            tid,
            trace_id,
            span_id,
            parent_span_id: parent,
        }
    }

    /// A two-thread snapshot: root(1) -> {child(2) with one mark, child(3)}.
    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            events: vec![
                ev(EventKind::Begin, "root", 0, 1, 1, 1, 0),
                ev(EventKind::Begin, "task", 10, 1, 1, 2, 1),
                ev(EventKind::Mark, "tick", 15, 1, 1, 2, 2),
                ev(EventKind::End, "task", 20, 1, 1, 2, 1),
                ev(EventKind::Begin, "task", 12, 2, 1, 3, 1),
                ev(EventKind::End, "task", 22, 2, 1, 3, 1),
                ev(EventKind::End, "root", 30, 1, 1, 1, 0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn chrome_json_has_all_phases_and_parses() {
        let json = sample().to_chrome_json("unit");
        for needle in [
            "\"ph\": \"B\"",
            "\"ph\": \"E\"",
            "\"ph\": \"i\"",
            "\"s\": \"t\"",
            "\"trace_id\": 1",
            "\"parent_span_id\": 1",
            "\"displayTimeUnit\": \"ns\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Must be valid JSON by our own reader.
        let doc = crate::json::parse(&json);
        assert!(doc.is_some(), "chrome export must parse");
        let doc = doc.unwrap();
        let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(events.len(), 7);
        assert_eq!(
            events[0].get("ts").and_then(|t| t.as_f64()),
            Some(0.0),
            "ts is microseconds with ns fraction"
        );
    }

    #[test]
    fn canonical_text_is_structure_only_and_groups_siblings() {
        let text = sample().to_canonical_text("unit");
        assert!(text.contains("- root"), "{text}");
        // The two task children differ (one has a mark), so no ×2.
        assert!(text.contains("  - task"), "{text}");
        assert!(text.contains("* tick"), "{text}");
        assert!(!text.contains("15"), "no timestamps in canonical text");
    }

    #[test]
    fn canonical_text_is_invariant_to_ids_and_interleaving() {
        let a = sample();
        // Same structure, different ids / tids / timestamps / event order.
        let b = TraceSnapshot {
            events: vec![
                ev(EventKind::Begin, "root", 5, 3, 40, 40, 0),
                ev(EventKind::Begin, "task", 11, 4, 40, 52, 40),
                ev(EventKind::End, "task", 13, 4, 40, 52, 40),
                ev(EventKind::Begin, "task", 12, 3, 40, 47, 40),
                ev(EventKind::Mark, "tick", 14, 3, 40, 47, 47),
                ev(EventKind::End, "task", 21, 3, 40, 47, 40),
                ev(EventKind::End, "root", 33, 3, 40, 40, 0),
            ],
            dropped: 0,
        };
        assert_eq!(a.to_canonical_text("x"), b.to_canonical_text("x"));
    }

    #[test]
    fn identical_subtrees_collapse_with_counts() {
        let mut events = vec![ev(EventKind::Begin, "root", 0, 1, 1, 1, 0)];
        for k in 0..4u64 {
            events.push(ev(EventKind::Begin, "task", 10 + k, 1, 1, 2 + k, 1));
            events.push(ev(EventKind::End, "task", 20 + k, 1, 1, 2 + k, 1));
        }
        events.push(ev(EventKind::End, "root", 99, 1, 1, 1, 0));
        let text = TraceSnapshot {
            events,
            dropped: 0,
        }
        .to_canonical_text("unit");
        assert!(text.contains("- task ×4"), "{text}");
    }

    #[test]
    fn orphan_parents_become_roots() {
        let snap = TraceSnapshot {
            events: vec![
                ev(EventKind::Begin, "lost-child", 0, 1, 7, 9, 4),
                ev(EventKind::End, "lost-child", 1, 1, 7, 9, 4),
            ],
            dropped: 2,
        };
        let text = snap.to_canonical_text("unit");
        assert!(text.contains("- lost-child"), "{text}");
        assert!(text.contains("dropped=2"), "{text}");
    }

    #[test]
    fn ring_drops_when_full_and_never_blocks() {
        let ring = Ring::new(1, 4);
        for k in 0..10 {
            ring.push(KIND_MARK, 0, k, TraceCtx::NONE, 0);
        }
        assert_eq!(ring.len.load(Ordering::Relaxed), 4);
        assert_eq!(ring.drops.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn ctx_adopt_restores_previous() {
        // Uses only thread-local state; safe under parallel tests.
        set_enabled(true);
        let before = current_ctx();
        let foreign = TraceCtx {
            trace_id: 1234,
            span_id: 5678,
        };
        {
            let _g = foreign.adopt();
            assert_eq!(current_ctx(), foreign);
        }
        assert_eq!(current_ctx(), before);
    }
}
