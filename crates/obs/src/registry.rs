//! The metric registry: named instruments backed by sharded atomic cells.
//!
//! Threads are assigned a shard index round-robin on first record; every
//! snapshot merges shards in ascending shard index. All merged quantities
//! are integers, so the merge is exact, associative, and commutative —
//! the property `crates/obs/tests/properties.rs` exercises directly.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of per-thread shards per instrument. Threads beyond this share
/// shards (correctness is unaffected; only contention grows).
pub(crate) const N_SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's shard index, assigned round-robin on first use.
pub(crate) fn shard_index() -> usize {
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
        s.set(v);
        v
    })
}

/// A cache-line-aligned atomic cell, so shards of one instrument do not
/// false-share.
#[repr(align(64))]
pub(crate) struct Pad(AtomicU64);

impl Pad {
    fn zero() -> Self {
        Pad(AtomicU64::new(0))
    }
}

fn shards() -> [Pad; N_SHARDS] {
    std::array::from_fn(|_| Pad::zero())
}

/// Recover a mutex guard whether or not a holder panicked; every critical
/// section here is a handful of map operations, so state stays consistent.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

struct CounterCore {
    cells: [Pad; N_SHARDS],
}

/// A monotonic event counter. Cheap to clone (shared core); recording is
/// one relaxed `fetch_add` on this thread's shard.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.cells[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total, merged over shards in ascending shard index.
    pub fn value(&self) -> u64 {
        self.core
            .cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    fn reset(&self) {
        for c in &self.core.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

struct GaugeCore {
    bits: AtomicU64,
}

/// A last-write-wins `f64` value.
#[derive(Clone)]
pub struct Gauge {
    core: Arc<GaugeCore>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 before the first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.core.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.core.bits.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

struct HistogramCore {
    /// Strictly increasing, finite upper bounds. Bucket `i` counts values
    /// `v <= bounds[i]` (and above the previous bound); the final bucket
    /// is the overflow bucket (including NaN).
    bounds: Vec<f64>,
    /// `N_SHARDS` rows of `bounds.len() + 1` bucket cells.
    cells: Vec<Vec<AtomicU64>>,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let b = self.bucket(v);
        self.core.cells[shard_index()][b].fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket `v` falls into: the first bound `>= v`, else overflow.
    /// NaN observations land in the overflow bucket.
    pub fn bucket(&self, v: f64) -> usize {
        if v.is_nan() {
            return self.core.bounds.len();
        }
        self.core.bounds.partition_point(|b| v > *b)
    }

    /// The registered upper bounds.
    pub fn bounds(&self) -> Vec<f64> {
        self.core.bounds.clone()
    }

    /// Per-bucket counts, merged over shards in ascending shard index.
    pub fn counts(&self) -> Vec<u64> {
        let n = self.core.bounds.len() + 1;
        let mut out = vec![0u64; n];
        for shard in &self.core.cells {
            for (acc, c) in out.iter_mut().zip(shard.iter()) {
                *acc = acc.wrapping_add(c.load(Ordering::Relaxed));
            }
        }
        out
    }

    /// The raw per-shard bucket counts, in shard-index order. Exposed so
    /// the conformance suite can verify that merging shards is associative
    /// and commutative (it is: bucket counts are integers under addition).
    pub fn shard_counts(&self) -> Vec<Vec<u64>> {
        self.core
            .cells
            .iter()
            .map(|shard| shard.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            .collect()
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.counts().iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    fn reset(&self) {
        for shard in &self.core.cells {
            for c in shard {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

pub(crate) struct SpanCore {
    pub(crate) count: [Pad; N_SHARDS],
    pub(crate) total_ns: [Pad; N_SHARDS],
    /// Longest single duration (ns); 0 until the first record.
    pub(crate) max_ns: AtomicU64,
    /// Shortest single duration (ns); `u64::MAX` until the first record.
    pub(crate) min_ns: AtomicU64,
    /// Deepest nesting level this span was entered at (1 = top level).
    pub(crate) max_depth: AtomicU64,
}

/// A named hierarchical timer. Enter with [`Span::enter`] (records on
/// drop) or [`Span::enter_timed`] (returns the elapsed seconds from
/// [`TimedSpan::finish_secs`]); external measurements can be folded in
/// with [`Span::record_ns`].
#[derive(Clone)]
pub struct Span {
    pub(crate) core: Arc<SpanCore>,
    pub(crate) enabled: Arc<AtomicBool>,
}

impl Span {
    /// True when the owning registry currently records.
    #[inline]
    pub fn recording(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Fold an externally measured duration into this span at the current
    /// nesting depth (used by the bench harness, which owns its own
    /// clock reads).
    pub fn record_ns(&self, ns: u64) {
        self.record_at_depth(ns, crate::span::depth_for_record());
    }

    pub(crate) fn record_at_depth(&self, ns: u64, depth: u64) {
        if !self.recording() {
            return;
        }
        let s = shard_index();
        self.core.count[s].0.fetch_add(1, Ordering::Relaxed);
        self.core.total_ns[s].0.fetch_add(ns, Ordering::Relaxed);
        self.core.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.core.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.core.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Times this span was recorded.
    pub fn count(&self) -> u64 {
        self.core
            .count
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.core
            .total_ns
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Total recorded time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns() as f64 * 1e-9
    }

    /// Deepest nesting level recorded (0 if never recorded).
    pub fn max_depth(&self) -> u64 {
        self.core.max_depth.load(Ordering::Relaxed)
    }

    pub(crate) fn min_ns_raw(&self) -> u64 {
        self.core.min_ns.load(Ordering::Relaxed)
    }

    pub(crate) fn max_ns_raw(&self) -> u64 {
        self.core.max_ns.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for c in &self.core.count {
            c.0.store(0, Ordering::Relaxed);
        }
        for c in &self.core.total_ns {
            c.0.store(0, Ordering::Relaxed);
        }
        self.core.max_ns.store(0, Ordering::Relaxed);
        self.core.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.core.max_depth.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, Span>,
}

/// A set of named instruments. Production code uses the process-global
/// registry behind [`crate::global`] and the `span!`/`counter!` macros;
/// tests construct private registries to isolate state.
pub struct Registry {
    inner: Mutex<Inner>,
    enabled: Arc<AtomicBool>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh registry with recording enabled.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A fresh registry with recording set as given.
    pub fn with_enabled(enabled: bool) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            enabled: Arc::new(AtomicBool::new(enabled)),
        }
    }

    /// Turn recording on or off. Registration and snapshots work either
    /// way; a disabled registry's instruments drop every record after a
    /// single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = relock(self.inner.lock());
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter {
                core: Arc::new(CounterCore { cells: shards() }),
                enabled: Arc::clone(&self.enabled),
            })
            .clone()
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = relock(self.inner.lock());
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge {
                core: Arc::new(GaugeCore {
                    bits: AtomicU64::new(0),
                }),
                enabled: Arc::clone(&self.enabled),
            })
            .clone()
    }

    /// Get or register the histogram `name` with the given upper bounds.
    /// Bounds are sanitized (non-finite dropped, sorted, deduplicated);
    /// if the name already exists the *first* registration's bounds win
    /// and the argument is ignored.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut inner = relock(self.inner.lock());
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| {
                let mut b: Vec<f64> = bounds.iter().copied().filter(|v| v.is_finite()).collect();
                b.sort_by(|x, y| x.total_cmp(y));
                b.dedup_by(|x, y| x.total_cmp(y).is_eq());
                let n = b.len() + 1;
                Histogram {
                    core: Arc::new(HistogramCore {
                        bounds: b,
                        cells: (0..N_SHARDS)
                            .map(|_| (0..n).map(|_| AtomicU64::new(0)).collect())
                            .collect(),
                    }),
                    enabled: Arc::clone(&self.enabled),
                }
            })
            .clone()
    }

    /// Get or register the span `name`.
    pub fn span(&self, name: &str) -> Span {
        let mut inner = relock(self.inner.lock());
        inner
            .spans
            .entry(name.to_string())
            .or_insert_with(|| Span {
                core: Arc::new(SpanCore {
                    count: shards(),
                    total_ns: shards(),
                    max_ns: AtomicU64::new(0),
                    min_ns: AtomicU64::new(u64::MAX),
                    max_depth: AtomicU64::new(0),
                }),
                enabled: Arc::clone(&self.enabled),
            })
            .clone()
    }

    /// Zero every registered instrument, keeping the registrations (and
    /// any cached handles) valid. Intended for tests and between bench
    /// entries.
    pub fn reset(&self) {
        let inner = relock(self.inner.lock());
        for c in inner.counters.values() {
            c.reset();
        }
        for g in inner.gauges.values() {
            g.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
        for s in inner.spans.values() {
            s.reset();
        }
    }

    pub(crate) fn with_inner<R>(
        &self,
        f: impl FnOnce(
            &BTreeMap<String, Counter>,
            &BTreeMap<String, Gauge>,
            &BTreeMap<String, Histogram>,
            &BTreeMap<String, Span>,
        ) -> R,
    ) -> R {
        let inner = relock(self.inner.lock());
        f(&inner.counters, &inner.gauges, &inner.histograms, &inner.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_and_value() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        let again = reg.counter("c");
        assert_eq!(again.value(), 42, "same name shares the core");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::with_enabled(false);
        let c = reg.counter("c");
        c.add(5);
        assert_eq!(c.value(), 0);
        reg.set_enabled(true);
        c.add(5);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        let g = reg.gauge("g");
        assert!(g.get().abs() < 1e-300);
        g.set(2.5);
        g.set(-1.25);
        assert!((g.get() + 1.25).abs() < 1e-15);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[1.0, 10.0, 100.0]);
        // v <= bound lands in that bound's bucket.
        assert_eq!(h.bucket(0.5), 0);
        assert_eq!(h.bucket(1.0), 0);
        assert_eq!(h.bucket(1.0000001), 1);
        assert_eq!(h.bucket(10.0), 1);
        assert_eq!(h.bucket(99.0), 2);
        assert_eq!(h.bucket(1e9), 3);
        assert_eq!(h.bucket(f64::NAN), 3);
        for v in [0.5, 1.0, 5.0, 1e9, -3.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), vec![3, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_bounds_sanitized() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[10.0, 1.0, f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(h.bounds(), vec![1.0, 10.0]);
        // Re-registration with different bounds is ignored.
        let h2 = reg.histogram("h", &[5.0]);
        assert_eq!(h2.bounds(), vec![1.0, 10.0]);
    }

    #[test]
    fn span_manual_record_and_stats() {
        let reg = Registry::new();
        let s = reg.span("s");
        s.record_ns(10);
        s.record_ns(30);
        s.record_ns(20);
        assert_eq!(s.count(), 3);
        assert_eq!(s.total_ns(), 60);
        assert_eq!(s.max_ns_raw(), 30);
        assert_eq!(s.min_ns_raw(), 10);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let s = reg.span("s");
        let h = reg.histogram("h", &[1.0]);
        c.add(7);
        s.record_ns(5);
        h.record(0.5);
        reg.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.min_ns_raw(), u64::MAX);
        assert_eq!(h.total(), 0);
        c.inc();
        assert_eq!(c.value(), 1, "handle still live after reset");
    }

    #[test]
    fn shard_index_is_stable_per_thread() {
        let a = shard_index();
        let b = shard_index();
        assert_eq!(a, b);
        assert!(a < N_SHARDS);
    }
}
