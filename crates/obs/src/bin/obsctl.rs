//! `obsctl` — render and gate observability artifacts.
//!
//! ```text
//! obsctl summary <OBS_*.json | BENCH_*.json>...
//! obsctl timeline <TRACE_*.json>...
//! obsctl diff [--baseline DIR] [--current DIR] [--tolerance PCT]
//!             [--floor-ns N] [--ignore SUBSTR]...
//! ```
//!
//! `summary` pretty-prints snapshot / bench documents. `timeline` rebuilds
//! the canonical (order-normalized) timeline from an exported Chrome
//! trace. `diff` compares every `OBS_*.json` / `BENCH_*.json` baseline
//! against the current run artifacts and exits nonzero on regression —
//! `scripts/verify.sh` runs it as a tier-1 gate.
//!
//! Exit codes: 0 clean, 1 regression found, 2 usage or IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use le_obs::diff::{diff_dirs, parse_bench_medians, parse_obs_snapshot, DiffOptions};
use le_obs::json::{self, Value};
use le_obs::trace::{EventKind, TraceEvent, TraceSnapshot};

/// The workspace `results/` directory, resolved at compile time so obsctl
/// works from any working directory.
fn results_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  obsctl summary <OBS_*.json | BENCH_*.json>...\n  \
         obsctl timeline <TRACE_*.json>...\n  \
         obsctl diff [--baseline DIR] [--current DIR] [--tolerance PCT] \
         [--floor-ns N] [--ignore SUBSTR]..."
    );
    ExitCode::from(2)
}

fn load(path: &Path) -> Result<Value, String> {
    let body = std::fs::read_to_string(path)
        .map_err(|e| format!("obsctl: cannot read {}: {e}", path.display()))?;
    json::parse(&body).ok_or_else(|| format!("obsctl: {} is not valid JSON", path.display()))
}

/// Render an OBS or BENCH document (shape is sniffed from the fields).
fn summary(path: &Path) -> Result<(), String> {
    let doc = load(path)?;
    if let Some(snap) = parse_obs_snapshot(&doc) {
        let run = doc.get("run").and_then(|r| r.as_str()).unwrap_or("?");
        print!("{}", snap.to_text(run));
        return Ok(());
    }
    if let Some(entries) = parse_bench_medians(&doc) {
        let name = doc.get("bench").and_then(|b| b.as_str()).unwrap_or("?");
        let samples = doc.get("samples").and_then(|s| s.as_f64()).unwrap_or(0.0);
        println!("BENCH {name} ({samples} samples)");
        for (entry, median) in entries {
            println!("  {entry:<40} median={median:.3e}s");
        }
        return Ok(());
    }
    Err(format!(
        "obsctl: {} is neither an OBS snapshot nor a BENCH document",
        path.display()
    ))
}

/// Rebuild a [`TraceSnapshot`] from an exported Chrome `trace_event` JSON
/// document and render its canonical timeline.
fn timeline(path: &Path) -> Result<(), String> {
    let doc = load(path)?;
    let raw = doc
        .get("traceEvents")
        .and_then(|t| t.as_arr())
        .ok_or_else(|| format!("obsctl: {} has no traceEvents array", path.display()))?;
    let mut events = Vec::with_capacity(raw.len());
    for e in raw {
        let kind = match e.get("ph").and_then(|p| p.as_str()) {
            Some("B") => EventKind::Begin,
            Some("E") => EventKind::End,
            Some("i") => EventKind::Mark,
            _ => continue, // metadata rows from other tools
        };
        let f = |key: &str| e.get("args").and_then(|a| a.get(key)).and_then(|v| v.as_f64());
        events.push(TraceEvent {
            kind,
            name: e
                .get("name")
                .and_then(|n| n.as_str())
                .unwrap_or("?")
                .to_string(),
            ts_ns: (e.get("ts").and_then(|t| t.as_f64()).unwrap_or(0.0) * 1_000.0).round()
                as u64,
            tid: e.get("tid").and_then(|t| t.as_f64()).unwrap_or(0.0) as u64,
            trace_id: f("trace_id").unwrap_or(0.0) as u64,
            span_id: f("span_id").unwrap_or(0.0) as u64,
            parent_span_id: f("parent_span_id").unwrap_or(0.0) as u64,
        });
    }
    let snap = TraceSnapshot {
        events,
        dropped: doc
            .get("otherData")
            .and_then(|o| o.get("dropped"))
            .and_then(|d| d.as_f64())
            .unwrap_or(0.0) as u64,
    };
    let run = doc
        .get("otherData")
        .and_then(|o| o.get("run"))
        .and_then(|r| r.as_str())
        .unwrap_or("?");
    print!("{}", snap.to_canonical_text(run));
    Ok(())
}

fn diff(args: &[String]) -> Result<bool, String> {
    let mut baseline: PathBuf = results_dir().join("baselines");
    let mut current: PathBuf = results_dir().to_path_buf();
    let mut opts = DiffOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("obsctl: {name} needs a value"))
        };
        match flag.as_str() {
            "--baseline" => baseline = PathBuf::from(take("--baseline")?),
            "--current" => current = PathBuf::from(take("--current")?),
            "--tolerance" => {
                opts.tolerance_pct = take("--tolerance")?
                    .parse::<f64>()
                    .map_err(|_| "obsctl: --tolerance wants a number (percent)".to_string())?;
            }
            "--floor-ns" => {
                opts.floor_ns = take("--floor-ns")?
                    .parse::<u64>()
                    .map_err(|_| "obsctl: --floor-ns wants an integer".to_string())?;
            }
            "--ignore" => opts.ignore.push(take("--ignore")?),
            other => return Err(format!("obsctl: unknown diff flag `{other}`")),
        }
    }
    let report = diff_dirs(&baseline, &current, &opts)
        .map_err(|e| format!("obsctl: diff failed: {e}"))?;
    print!("{}", report.to_text());
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    match cmd.as_str() {
        "summary" | "timeline" if rest.is_empty() => usage(),
        "summary" | "timeline" => {
            let render = if cmd == "summary" { summary } else { timeline };
            for path in rest {
                if let Err(e) = render(Path::new(path)) {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
            ExitCode::SUCCESS
        }
        "diff" => match diff(rest) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}
