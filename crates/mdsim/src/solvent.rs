//! Explicit-solvent cost decomposition and the NN-implicit-solvent
//! substitution (experiment E10).
//!
//! §II-C2 of the paper: "replacing solvent-solvent and solvent-solute
//! interactions, which typically make up 80%-90% of the computational effort
//! in a classical all-atom, explicit solvent simulation, with a NN potential
//! promises large performance gains at a fraction of the cost of traditional
//! implicit solvent models". This module provides:
//!
//! * [`pair_share`] / [`measure_cost_shares`] — the analytic and measured
//!   decomposition of pair-interaction work into solute–solute,
//!   solute–solvent, and solvent–solvent categories;
//! * [`SolvatedSystem`] — a mixture of big solute and small solvent LJ
//!   particles in a slab, with a dedicated Langevin loop that tallies pair
//!   work by category;
//! * [`pmf_from_rdf`] + [`PmfPotential`] — a learned solute–solute
//!   potential of mean force: an MLP is trained on `r → −ln g(r)` sampled
//!   from the explicit simulation, then drives a solvent-free simulation.

use std::cell::RefCell;

use le_linalg::{Matrix, Rng};
use le_nn::{BatchScratch, Mlp, MlpConfig, Scaler, TrainConfig, Trainer};

use crate::forces::ForceField;
use crate::system::SlabBox;
use crate::{MdError, Result};

/// Fraction of pair interactions by category for given particle counts.
/// Categories: (solute–solute, solute–solvent, solvent–solvent).
pub fn pair_share(n_solute: usize, n_solvent: usize) -> (f64, f64, f64) {
    let uu = n_solute * n_solute.saturating_sub(1) / 2;
    let uv = n_solute * n_solvent;
    let vv = n_solvent * n_solvent.saturating_sub(1) / 2;
    let total = (uu + uv + vv) as f64;
    if total == 0.0 { // lint:allow(float-hygiene): integer-cast count, exact zero means no pairs
        return (0.0, 0.0, 0.0);
    }
    (uu as f64 / total, uv as f64 / total, vv as f64 / total)
}

/// Measured pair-work tallies from an explicit-solvent run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostShares {
    /// Solute–solute pair evaluations.
    pub uu: u64,
    /// Solute–solvent pair evaluations.
    pub uv: u64,
    /// Solvent–solvent pair evaluations.
    pub vv: u64,
}

impl CostShares {
    /// Fraction of pair work that involves solvent (the part the NN
    /// replaces).
    pub fn solvent_fraction(&self) -> f64 {
        let total = (self.uu + self.uv + self.vv) as f64;
        if total == 0.0 { // lint:allow(float-hygiene): integer-cast count, exact zero means no pairs
            return 0.0;
        }
        (self.uv + self.vv) as f64 / total
    }
}

/// Configuration of the solvated test system.
#[derive(Debug, Clone, Copy)]
pub struct SolvatedConfig {
    /// Number of solute particles.
    pub n_solute: usize,
    /// Number of solvent particles.
    pub n_solvent: usize,
    /// Solute LJ diameter.
    pub solute_diameter: f64,
    /// Solvent LJ diameter.
    pub solvent_diameter: f64,
    /// Cubic-ish box side (slab with h = side).
    pub side: f64,
    /// Timestep.
    pub dt: f64,
    /// Langevin friction.
    pub gamma: f64,
    /// Temperature (kT).
    pub temperature: f64,
}

impl SolvatedConfig {
    /// Small, test-speed system with a solvent-dominated pair count.
    pub fn small() -> Self {
        Self {
            n_solute: 12,
            n_solvent: 60,
            solute_diameter: 0.5,
            solvent_diameter: 0.25,
            side: 4.0,
            dt: 0.004,
            gamma: 1.0,
            temperature: 1.0,
        }
    }
}

/// The mixture system with a category-tallying force loop.
#[derive(Debug)]
pub struct SolvatedSystem {
    bbox: SlabBox,
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    /// `true` for solute particles (stored first).
    is_solute: Vec<bool>,
    diameter: Vec<f64>,
    cfg: SolvatedConfig,
    ff: ForceField,
    /// Pair-work tallies accumulated across force evaluations.
    pub shares: CostShares,
}

impl SolvatedSystem {
    /// Build and randomly place the mixture.
    pub fn new(cfg: SolvatedConfig, rng: &mut Rng) -> Result<Self> {
        let bbox = SlabBox::new(cfg.side, cfg.side, cfg.side)?;
        let n = cfg.n_solute + cfg.n_solvent;
        let mut pos = Vec::with_capacity(n);
        let mut vel = Vec::with_capacity(n);
        let mut is_solute = Vec::with_capacity(n);
        let mut diameter = Vec::with_capacity(n);
        for i in 0..n {
            let solute = i < cfg.n_solute;
            let dia = if solute {
                cfg.solute_diameter
            } else {
                cfg.solvent_diameter
            };
            let margin = 0.5 * dia;
            pos.push([
                rng.uniform_in(0.0, cfg.side),
                rng.uniform_in(0.0, cfg.side),
                rng.uniform_in(margin, cfg.side - margin),
            ]);
            let v_std = cfg.temperature.sqrt();
            vel.push([
                rng.gaussian() * v_std,
                rng.gaussian() * v_std,
                rng.gaussian() * v_std,
            ]);
            is_solute.push(solute);
            diameter.push(dia);
        }
        let ff = ForceField {
            // Neutral mixture: no electrostatics.
            coulomb_cutoff: 0.0,
            wall_sigma: 0.5 * cfg.solvent_diameter,
            ..Default::default()
        };
        Ok(Self {
            bbox,
            pos,
            vel,
            is_solute,
            diameter,
            cfg,
            ff,
            shares: CostShares::default(),
        })
    }

    /// All-pairs force evaluation with category tallies.
    /// (Particle counts here are small; the tally itself is the point.)
    fn forces(&mut self) -> Vec<[f64; 3]> {
        let n = self.pos.len();
        let mut f = vec![[0.0f64; 3]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.bbox.min_image(&self.pos[i], &self.pos[j]);
                let r2 = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).max(1e-6);
                let sigma = 0.5 * (self.diameter[i] + self.diameter[j]);
                let rc = self.ff.lj_cutoff_factor * sigma;
                match (self.is_solute[i], self.is_solute[j]) {
                    (true, true) => self.shares.uu += 1,
                    (false, false) => self.shares.vv += 1,
                    _ => self.shares.uv += 1,
                }
                if r2 > rc * rc {
                    continue;
                }
                let (_, f_over_r) = self.ff.pair(r2, 0.0, 0.0, sigma);
                for k in 0..3 {
                    let fk = f_over_r * d[k];
                    f[i][k] += fk;
                    f[j][k] -= fk;
                }
            }
            // Confining walls.
            let (_, fz) = self.ff.wall(self.pos[i][2], self.bbox.h);
            f[i][2] += fz;
        }
        f
    }

    /// Run Langevin dynamics for `steps`, recording the solute–solute RDF
    /// every `sample_interval` steps after `equil` steps. Returns the RDF.
    pub fn run(
        &mut self,
        steps: usize,
        equil: usize,
        sample_interval: usize,
        rdf_bins: usize,
        rdf_rmax: f64,
        rng: &mut Rng,
    ) -> Result<Rdf> {
        let dt = self.cfg.dt;
        let half = 0.5 * dt;
        let c1 = (-self.cfg.gamma * dt).exp();
        let c2 = ((1.0 - c1 * c1) * self.cfg.temperature).sqrt();
        let mut f = self.forces();
        let mut rdf = Rdf::new(rdf_bins, rdf_rmax);
        for step in 0..steps {
            for i in 0..self.pos.len() {
                for k in 0..3 {
                    self.vel[i][k] += half * f[i][k];
                    self.pos[i][k] += half * self.vel[i][k];
                }
            }
            for v in &mut self.vel {
                for k in 0..3 {
                    v[k] = c1 * v[k] + c2 * rng.gaussian();
                }
            }
            for i in 0..self.pos.len() {
                for k in 0..3 {
                    self.pos[i][k] += half * self.vel[i][k];
                }
                let mut r = self.pos[i];
                self.bbox.wrap(&mut r);
                self.pos[i] = r;
            }
            f = self.forces();
            for i in 0..self.pos.len() {
                for k in 0..3 {
                    self.vel[i][k] += half * f[i][k];
                }
            }
            if step >= equil && (step - equil).is_multiple_of(sample_interval) {
                self.record_solute_rdf(&mut rdf);
            }
            // Instability guard.
            if step % 200 == 0 {
                let ke: f64 = self
                    .vel
                    .iter()
                    .map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
                    .sum();
                if !ke.is_finite() {
                    return Err(MdError::Unstable {
                        step,
                        reason: "non-finite kinetic energy".into(),
                    });
                }
            }
        }
        Ok(rdf)
    }

    fn record_solute_rdf(&self, rdf: &mut Rdf) {
        let solutes: Vec<usize> = (0..self.pos.len()).filter(|&i| self.is_solute[i]).collect();
        for (a, &i) in solutes.iter().enumerate() {
            for &j in &solutes[a + 1..] {
                let d = self.bbox.min_image(&self.pos[i], &self.pos[j]);
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                rdf.record(r);
            }
        }
        rdf.snapshots += 1;
        rdf.pairs_per_snapshot = solutes.len() * (solutes.len() - 1) / 2;
        rdf.volume = self.bbox.volume();
        rdf.n_particles = solutes.len();
    }
}

/// A radial distribution function accumulator.
#[derive(Debug, Clone)]
pub struct Rdf {
    /// Histogram counts.
    pub counts: Vec<u64>,
    /// Maximum radius.
    pub rmax: f64,
    /// Snapshots recorded.
    pub snapshots: usize,
    /// Unordered pairs per snapshot.
    pub pairs_per_snapshot: usize,
    /// System volume (for ideal-gas normalization).
    pub volume: f64,
    /// Number of particles of the tracked species.
    pub n_particles: usize,
}

impl Rdf {
    /// New empty accumulator.
    pub fn new(bins: usize, rmax: f64) -> Self {
        Self {
            counts: vec![0; bins],
            rmax,
            snapshots: 0,
            pairs_per_snapshot: 0,
            volume: 1.0,
            n_particles: 0,
        }
    }

    /// Record one pair separation.
    pub fn record(&mut self, r: f64) {
        if r < self.rmax {
            let b = (r / self.rmax * self.counts.len() as f64) as usize;
            let last = self.counts.len() - 1;
            self.counts[b.min(last)] += 1;
        }
    }

    /// Bin centers.
    pub fn bin_centers(&self) -> Vec<f64> {
        let w = self.rmax / self.counts.len() as f64;
        (0..self.counts.len()).map(|i| (i as f64 + 0.5) * w).collect()
    }

    /// Normalized g(r) against the ideal-gas expectation.
    pub fn g(&self) -> Vec<f64> {
        if self.snapshots == 0 || self.n_particles < 2 {
            return vec![0.0; self.counts.len()];
        }
        let w = self.rmax / self.counts.len() as f64;
        let density = self.n_particles as f64 / self.volume;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let r_lo = i as f64 * w;
                let r_hi = r_lo + w;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal =
                    0.5 * self.n_particles as f64 * density * shell * self.snapshots as f64;
                if ideal > 0.0 {
                    c as f64 / ideal
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Extract (r, PMF) training pairs from a measured g(r):
/// `PMF(r) = −kT ln g(r)`, keeping only bins with enough statistics.
pub fn pmf_from_rdf(rdf: &Rdf, min_count: u64) -> Vec<(f64, f64)> {
    let g = rdf.g();
    let centers = rdf.bin_centers();
    centers
        .into_iter()
        .zip(g)
        .zip(rdf.counts.iter().copied())
        .filter(|&((_, gv), c)| c >= min_count && gv > 1e-6)
        .map(|((r, gv), _)| (r, -gv.ln()))
        .collect()
}

/// A learned solute–solute potential of mean force: an MLP over r.
#[derive(Debug, Clone)]
pub struct PmfPotential {
    net: Mlp,
    /// Preallocated batch-engine arena: the PMF sits in the pair loop of a
    /// solvent-free simulation, so evaluation reuses these buffers instead
    /// of building per-layer matrices on every call.
    scratch: RefCell<BatchScratch>,
    x_scaler: Scaler,
    y_scaler: Scaler,
    /// Validity range of the fit; outside it the PMF is extrapolated flat.
    pub r_range: (f64, f64),
}

impl PmfPotential {
    /// Fit an MLP to (r, PMF) samples.
    pub fn train(samples: &[(f64, f64)], seed: u64) -> Result<Self> {
        if samples.len() < 8 {
            return Err(MdError::InvalidParam(format!(
                "need at least 8 PMF samples, got {}",
                samples.len()
            )));
        }
        let n = samples.len();
        let mut x = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 1);
        for (i, &(r, u)) in samples.iter().enumerate() {
            x.set(i, 0, r);
            y.set(i, 0, u);
        }
        let x_scaler = Scaler::fit(&x).map_err(|e| MdError::Internal(e.to_string()))?;
        let y_scaler = Scaler::fit(&y).map_err(|e| MdError::Internal(e.to_string()))?;
        let xs = x_scaler.transform(&x).map_err(|e| MdError::Internal(e.to_string()))?;
        let ys = y_scaler.transform(&y).map_err(|e| MdError::Internal(e.to_string()))?;
        let mut rng = Rng::new(seed);
        let mut net = Mlp::new(MlpConfig::regression(&[1, 16, 16, 1]), &mut rng)
            .map_err(|e| MdError::Internal(e.to_string()))?;
        Trainer::new(TrainConfig {
            epochs: 400,
            patience: Some(60),
            ..Default::default()
        })
        .fit(&mut net, &xs, &ys)
        .map_err(|e| MdError::Internal(e.to_string()))?;
        let r_min = samples.iter().map(|s| s.0).fold(f64::INFINITY, f64::min);
        let r_max = samples.iter().map(|s| s.0).fold(0.0f64, f64::max);
        Ok(Self {
            scratch: RefCell::new(BatchScratch::new(&net)),
            net,
            x_scaler,
            y_scaler,
            r_range: (r_min, r_max),
        })
    }

    /// The underlying fitted network (the batch engine holds a snapshot of
    /// its weights).
    pub fn model(&self) -> &Mlp {
        &self.net
    }

    /// PMF values at many separations (each clamped to the fitted range),
    /// evaluated as one fused batch through the preallocated engine.
    pub fn energy_batch(&self, rs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            rs.iter()
                .map(|&r| r.clamp(self.r_range.0, self.r_range.1)),
        );
        for v in out.iter_mut() {
            let mut one = [*v];
            self.x_scaler.transform_slice(&mut one).expect("1 col"); // lint:allow(no-panic): scaler fitted on one column
            *v = one[0];
        }
        let mut scratch = self.scratch.borrow_mut();
        let x = std::mem::take(out);
        out.resize(rs.len(), 0.0);
        scratch
            .forward_into(&x, rs.len(), out)
            .expect("1 in 1 out"); // lint:allow(no-panic): net built 1-in/1-out
        for v in out.iter_mut() {
            let mut one = [*v];
            self.y_scaler.inverse_transform_slice(&mut one).expect("1 col"); // lint:allow(no-panic): scaler fitted on one column
            *v = one[0];
        }
    }

    /// PMF value at separation r (clamped to the fitted range).
    pub fn energy(&self, r: f64) -> f64 {
        let mut out = Vec::with_capacity(1);
        self.energy_batch(std::slice::from_ref(&r), &mut out);
        out[0]
    }

    /// Radial force −dPMF/dr via central difference (zero outside range).
    /// Both stencil points ride one fused batch evaluation.
    pub fn force(&self, r: f64) -> f64 {
        if r <= self.r_range.0 || r >= self.r_range.1 {
            return 0.0;
        }
        let eps = 1e-4;
        let mut out = Vec::with_capacity(2);
        self.energy_batch(&[r + eps, r - eps], &mut out);
        -(out[0] - out[1]) / (2.0 * eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_share_matches_combinatorics() {
        let (uu, uv, vv) = pair_share(10, 0);
        assert!((uu - 1.0).abs() < 1e-12 && uv == 0.0 && vv == 0.0);
        // N_v = 3 N_u → solvent-involving share is high.
        let (uu, uv, vv) = pair_share(20, 60);
        assert!((uu + uv + vv - 1.0).abs() < 1e-12);
        assert!(
            uv + vv > 0.85,
            "solvent share {} should dominate at 1:3 ratio",
            uv + vv
        );
        assert_eq!(pair_share(0, 0), (0.0, 0.0, 0.0));
    }

    #[test]
    fn measured_shares_match_analytic() {
        let cfg = SolvatedConfig::small();
        let mut rng = Rng::new(91);
        let mut sys = SolvatedSystem::new(cfg, &mut rng).unwrap();
        let _ = sys.run(50, 0, 10, 20, 2.0, &mut rng).unwrap();
        let measured = sys.shares;
        let (uu_a, uv_a, vv_a) = pair_share(cfg.n_solute, cfg.n_solvent);
        let total = (measured.uu + measured.uv + measured.vv) as f64;
        assert!((measured.uu as f64 / total - uu_a).abs() < 1e-9);
        assert!((measured.uv as f64 / total - uv_a).abs() < 1e-9);
        assert!((measured.vv as f64 / total - vv_a).abs() < 1e-9);
        // The paper's 80–90% claim at this composition.
        assert!(
            measured.solvent_fraction() > 0.8,
            "solvent fraction {}",
            measured.solvent_fraction()
        );
    }

    #[test]
    fn explicit_run_produces_rdf() {
        let cfg = SolvatedConfig::small();
        let mut rng = Rng::new(92);
        let mut sys = SolvatedSystem::new(cfg, &mut rng).unwrap();
        let rdf = sys.run(600, 200, 10, 30, 2.0, &mut rng).unwrap();
        assert!(rdf.snapshots > 0);
        let g = rdf.g();
        assert_eq!(g.len(), 30);
        // Excluded volume: g(r) ≈ 0 well inside the solute diameter.
        assert!(g[0] < 0.5, "hard core should suppress g at tiny r, got {}", g[0]);
        // Some structure exists.
        assert!(g.iter().any(|&v| v > 0.2), "g(r) should be nonzero somewhere");
    }

    #[test]
    fn rdf_of_ideal_gas_is_flat() {
        // Random points → g(r) ≈ 1 at intermediate r.
        let mut rdf = Rdf::new(20, 2.0);
        let bbox = SlabBox::new(6.0, 6.0, 6.0).unwrap();
        let mut rng = Rng::new(93);
        let n = 40;
        for _ in 0..300 {
            let pos: Vec<[f64; 3]> = (0..n)
                .map(|_| {
                    [
                        rng.uniform_in(0.0, 6.0),
                        rng.uniform_in(0.0, 6.0),
                        rng.uniform_in(0.0, 6.0),
                    ]
                })
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = bbox.min_image(&pos[i], &pos[j]);
                    let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                    rdf.record(r);
                }
            }
            rdf.snapshots += 1;
        }
        rdf.volume = 216.0;
        rdf.n_particles = n;
        let g = rdf.g();
        // Note: z is not periodic in SlabBox::min_image, so distances along
        // z near the box scale are undersampled; test mid-range bins only.
        for (i, &gv) in g.iter().enumerate().skip(3).take(10) {
            assert!(
                (gv - 1.0).abs() < 0.25,
                "ideal-gas g at bin {i} = {gv}, expected ≈1"
            );
        }
    }

    #[test]
    fn pmf_extraction_filters_low_statistics() {
        let mut rdf = Rdf::new(10, 2.0);
        rdf.snapshots = 100;
        rdf.n_particles = 10;
        rdf.volume = 100.0;
        rdf.counts = vec![0, 1, 500, 600, 700, 800, 900, 1000, 1100, 1200];
        let samples = pmf_from_rdf(&rdf, 100);
        assert!(samples.len() == 8, "two low-count bins dropped, got {}", samples.len());
        assert!(samples.iter().all(|&(r, _)| r > 0.0 && r < 2.0));
    }

    #[test]
    fn pmf_potential_learns_and_differentiates() {
        // Synthetic PMF: harmonic well centred at r = 1.
        let samples: Vec<(f64, f64)> = (0..60)
            .map(|i| {
                let r = 0.5 + 1.2 * i as f64 / 59.0;
                (r, 2.0 * (r - 1.0) * (r - 1.0))
            })
            .collect();
        let pot = PmfPotential::train(&samples, 5).unwrap();
        // Value near the well.
        assert!(pot.energy(1.0).abs() < 0.25, "well bottom {}", pot.energy(1.0));
        assert!(pot.energy(0.6) > pot.energy(1.0));
        // Force points toward the minimum.
        assert!(pot.force(0.7) > 0.0, "left of well pushes right");
        assert!(pot.force(1.4) < 0.0, "right of well pushes left");
        // Out of range: zero force.
        assert_eq!(pot.force(0.1), 0.0);
        assert_eq!(pot.force(5.0), 0.0);
    }

    #[test]
    fn pmf_training_needs_enough_samples() {
        let few = vec![(1.0, 0.0); 5];
        assert!(PmfPotential::train(&few, 1).is_err());
    }
}
