//! Force field for the confined-electrolyte system: truncated-shifted
//! Lennard-Jones excluded volume, screened-Coulomb (Yukawa) electrostatics,
//! and LJ 9-3 confining walls.
//!
//! Units: lengths nm, energies kT, charges in units of e. Electrostatics is
//! parameterized by the Bjerrum length `l_b` (0.714 nm for water at 298 K)
//! and inverse Debye screening length `kappa` derived from the salt
//! concentration, which is how the implicit solvent enters.

use crate::celllist::CellList;
use crate::system::System;

/// Bjerrum length of water at room temperature (nm).
pub const BJERRUM_WATER: f64 = 0.714;

/// Avogadro-based conversion: ions per nm³ per mol/L.
pub const IONS_PER_NM3_PER_MOLAR: f64 = 0.602214;

/// Debye screening parameter κ (1/nm) for a symmetric electrolyte of molar
/// concentration `c` with valencies `z_p`, `z_n` (positive integers).
///
/// κ² = 4π l_B Σ_i n_i z_i², with n_i in ions/nm³.
pub fn debye_kappa(c_molar: f64, z_p: u32, z_n: u32, l_b: f64) -> f64 {
    let n_pairs = c_molar * IONS_PER_NM3_PER_MOLAR;
    // Electroneutral pair: n_+ z_+ = n_- z_- ; per "pair" of formula units
    // n_+ = n_pairs * z_n, n_- = n_pairs * z_p (e.g. CaCl2: 1 Ca, 2 Cl).
    let n_p = n_pairs * z_n as f64;
    let n_n = n_pairs * z_p as f64;
    let ionic = n_p * (z_p as f64).powi(2) + n_n * (z_n as f64).powi(2);
    (4.0 * std::f64::consts::PI * l_b * ionic).sqrt()
}

/// Force-field parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForceField {
    /// LJ well depth (kT).
    pub epsilon: f64,
    /// LJ cutoff as a multiple of the pair σ.
    pub lj_cutoff_factor: f64,
    /// Bjerrum length (nm).
    pub l_b: f64,
    /// Inverse Debye length (1/nm).
    pub kappa: f64,
    /// Electrostatic cutoff (nm).
    pub coulomb_cutoff: f64,
    /// Wall LJ 9-3 energy scale (kT).
    pub wall_epsilon: f64,
    /// Wall LJ σ (nm).
    pub wall_sigma: f64,
}

impl Default for ForceField {
    fn default() -> Self {
        Self {
            epsilon: 1.0,
            lj_cutoff_factor: 2.5,
            l_b: BJERRUM_WATER,
            kappa: 1.0,
            coulomb_cutoff: 3.5,
            wall_epsilon: 1.0,
            wall_sigma: 0.25,
        }
    }
}

impl ForceField {
    /// The largest pair cutoff (sets the cell-list bin size).
    pub fn max_cutoff(&self, max_diameter: f64) -> f64 {
        (self.lj_cutoff_factor * max_diameter).max(self.coulomb_cutoff)
    }

    /// Pair potential energy and force magnitude divided by r (so the force
    /// vector is `f_over_r * d`), for separation `r` between particles with
    /// charges `qi`, `qj` and mean diameter `sigma`.
    ///
    /// Both terms use the *force-shifted* truncation
    /// `U_sf(r) = U(r) − U(rc) − (r − rc) U'(rc)`, which makes energy and
    /// force continuous at the cutoff — essential for low NVE energy drift.
    #[inline]
    pub fn pair(&self, r2: f64, qi: f64, qj: f64, sigma: f64) -> (f64, f64) {
        let mut energy = 0.0;
        let mut f_over_r = 0.0;
        let r = r2.sqrt();
        // Force-shifted LJ.
        let rc_lj = self.lj_cutoff_factor * sigma;
        if r < rc_lj {
            let lj = |rr: f64| -> (f64, f64) {
                // Returns (U, F) with F = -dU/dr.
                let sr2 = sigma * sigma / (rr * rr);
                let sr6 = sr2 * sr2 * sr2;
                let sr12 = sr6 * sr6;
                let u = 4.0 * self.epsilon * (sr12 - sr6);
                let f = 24.0 * self.epsilon * (2.0 * sr12 - sr6) / rr;
                (u, f)
            };
            let (u, f) = lj(r);
            let (u_c, f_c) = lj(rc_lj);
            energy += u - u_c + (r - rc_lj) * f_c;
            f_over_r += (f - f_c) / r;
        }
        // Force-shifted screened Coulomb (Yukawa).
        // Zero charge means "no Coulomb term", an exact sentinel.
        if qi != 0.0 && qj != 0.0 && r < self.coulomb_cutoff { // lint:allow(float-hygiene): exact sentinel
            let pref = self.l_b * qi * qj;
            let yuk = |rr: f64| -> (f64, f64) {
                let u = pref * (-self.kappa * rr).exp() / rr;
                let f = u * (self.kappa + 1.0 / rr);
                (u, f)
            };
            let (u, f) = yuk(r);
            let (u_c, f_c) = yuk(self.coulomb_cutoff);
            energy += u - u_c + (r - self.coulomb_cutoff) * f_c;
            f_over_r += (f - f_c) / r;
        }
        (energy, f_over_r)
    }

    /// Wall potential for a particle at height `z` in a slab of height `h`:
    /// repulsive LJ 9-3 from both walls, cut at its minimum so it is purely
    /// confining (WCA-style). Returns `(energy, force_z)`.
    #[inline]
    pub fn wall(&self, z: f64, h: f64) -> (f64, f64) {
        let (e_lo, f_lo) = self.wall_one_side(z);
        let (e_hi, f_hi) = self.wall_one_side(h - z);
        (e_lo + e_hi, f_lo - f_hi)
    }

    /// One-sided LJ 9-3 repulsion as a function of distance `dz` from the
    /// wall plane. Zero beyond the potential minimum; diverges as dz → 0.
    #[inline]
    fn wall_one_side(&self, dz: f64) -> (f64, f64) {
        // Minimum of the 9-3 potential: z* = (2/5)^(1/6) σ ≈ 0.858 σ.
        let z_min = 0.858_374_2 * self.wall_sigma;
        if dz >= z_min {
            return (0.0, 0.0);
        }
        // Guard against division blowups when a particle tunnels into the
        // wall during early equilibration.
        let dz = dz.max(0.05 * self.wall_sigma);
        let s3 = (self.wall_sigma / dz).powi(3);
        let s9 = s3 * s3 * s3;
        // U = ε_w [ (2/15) s^9 − s^3 ], shifted so U(z_min) = 0. At the
        // minimum s³ = (5/2)^(1/2), s⁹ = (5/2)^(3/2).
        let u_min = self.wall_epsilon * ((2.0 / 15.0) * 2.5f64.powf(1.5) - 2.5f64.sqrt());
        let u = self.wall_epsilon * ((2.0 / 15.0) * s9 - s3) - u_min;
        // F = -dU/ddz = ε_w [ (6/5) s^9 − 3 s^3 ] / dz  (positive = away
        // from wall).
        let f = self.wall_epsilon * ((6.0 / 5.0) * s9 - 3.0 * s3) / dz;
        (u, f)
    }
}

/// Per-group force buffer for the parallel pair loop: forces accumulate
/// here, group-locally, and are merged in fixed group order.
#[derive(Debug, Default, Clone)]
struct GroupBuf {
    force: Vec<[f64; 3]>,
    energy: f64,
}

/// Reusable scratch for [`compute_forces_with`]: per-group force buffers
/// that persist across steps, so the force loop allocates nothing after
/// the first call. One scratch per trajectory; do not share across
/// concurrently integrated systems.
#[derive(Debug, Default)]
pub struct ForceScratch {
    groups: Vec<GroupBuf>,
    /// Cell-ordered position snapshot (see [`CellList::gather`]), refreshed
    /// every call so it never goes stale between cell-list rebuilds.
    gathered: Vec<[f64; 3]>,
}

impl ForceScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure `n_groups` buffers of `n` zeroed entries, reusing capacity.
    /// Buffers are zeroed by the merge pass after each use, so only fresh
    /// or resized buffers need explicit clearing here.
    fn reset(&mut self, n_groups: usize, n: usize) {
        self.groups.resize_with(n_groups, GroupBuf::default);
        for g in &mut self.groups {
            if g.force.len() != n {
                g.force.clear();
                g.force.resize(n, [0.0; 3]);
            }
            g.energy = 0.0;
        }
    }
}

/// How many pair-task groups the force loop uses: enough to feed the pool
/// on irregular occupancy, capped so the O(groups · n) merge stays a small
/// fraction of the pair work. A pure function of the cell grid and `n` —
/// never of the thread count — so the accumulation order (group-local
/// sums, merged in group order) is bit-identical for any pool size,
/// including the sequential path.
fn n_force_groups(n_tasks: usize, n: usize) -> usize {
    n_tasks.min(16).min((n / 128).max(1)).max(1)
}

/// Compute all forces into `sys.force` and return total potential energy.
/// Uses the provided cell list (built at the current positions) and
/// `scratch` for per-group accumulation buffers that are reused across
/// calls (no per-step allocation).
///
/// Pair tasks (cell rows) are grouped into [`n_force_groups`] contiguous
/// ranges; each group accumulates ±f into its own buffer on whichever pool
/// thread claims it, and buffers are merged into `sys.force` in group
/// order. Both the grouping and the merge order are independent of the
/// thread count, so the result is bit-identical to the sequential path.
pub fn compute_forces_with(
    sys: &mut System,
    ff: &ForceField,
    cells: &CellList,
    scratch: &mut ForceScratch,
) -> f64 {
    let n = sys.len();
    let n_tasks = cells.n_pair_tasks();
    let n_groups = n_force_groups(n_tasks, n);
    let tasks_per_group = n_tasks.div_ceil(n_groups.max(1)).max(1);
    scratch.reset(n_groups, n);
    cells.gather(&sys.pos, &mut scratch.gathered);
    {
        let pos = &sys.pos;
        let gathered: &[[f64; 3]] = &scratch.gathered;
        let charge = &sys.charge;
        let diameter = &sys.diameter;
        le_pool::par_for_chunks(&mut scratch.groups, 1, |g, group| {
            let buf = &mut group[0];
            let acc = &mut buf.force;
            let mut energy = 0.0;
            let lo = g * tasks_per_group;
            let hi = (lo + tasks_per_group).min(n_tasks);
            for task in lo..hi {
                cells.for_each_pair_dist_in_task_cached(task, pos, gathered, |i, j, d, r2| {
                    let sigma = 0.5 * (diameter[i] + diameter[j]);
                    let max_cut = ff.max_cutoff(sigma);
                    if r2 > max_cut * max_cut {
                        return;
                    }
                    // Guard r² against overlap-singularity at insertion time.
                    let r2 = r2.max(1e-6);
                    let (e, f_over_r) = ff.pair(r2, charge[i], charge[j], sigma);
                    energy += e;
                    for k in 0..3 {
                        let fk = f_over_r * d[k];
                        acc[i][k] += fk;
                        acc[j][k] -= fk;
                    }
                });
            }
            buf.energy = energy;
        });
    }
    // Merge group buffers in group order (and zero them for the next call),
    // then add the wall forces.
    for f in &mut sys.force {
        *f = [0.0; 3];
    }
    let mut potential = 0.0;
    for buf in &mut scratch.groups {
        potential += buf.energy;
        for (f, acc) in sys.force.iter_mut().zip(buf.force.iter_mut()) {
            for k in 0..3 {
                f[k] += acc[k];
            }
            *acc = [0.0; 3];
        }
    }
    let h = sys.bbox.h;
    for i in 0..n {
        let (e, fz) = ff.wall(sys.pos[i][2], h);
        potential += e;
        sys.force[i][2] += fz;
    }
    potential
}

/// [`compute_forces_with`] with a throwaway scratch — convenience for
/// one-shot evaluations; step loops should hold a [`ForceScratch`] to
/// avoid the per-call allocation.
pub fn compute_forces(sys: &mut System, ff: &ForceField, cells: &CellList) -> f64 {
    compute_forces_with(sys, ff, cells, &mut ForceScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SlabBox, Species, System};
    use le_linalg::Rng;

    #[test]
    fn debye_kappa_monotone_in_concentration() {
        let k1 = debye_kappa(0.1, 1, 1, BJERRUM_WATER);
        let k2 = debye_kappa(0.4, 1, 1, BJERRUM_WATER);
        assert!(k2 > k1, "higher salt → stronger screening");
        // 4x concentration → 2x kappa.
        assert!((k2 / k1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn debye_kappa_known_value() {
        // 0.1 M 1:1 electrolyte in water: Debye length ≈ 0.96 nm.
        let kappa = debye_kappa(0.1, 1, 1, BJERRUM_WATER);
        let debye_len = 1.0 / kappa;
        assert!(
            (debye_len - 0.96).abs() < 0.05,
            "Debye length {debye_len} nm should be ≈0.96"
        );
    }

    #[test]
    fn kappa_multivalent_exceeds_monovalent() {
        let k11 = debye_kappa(0.1, 1, 1, BJERRUM_WATER);
        let k21 = debye_kappa(0.1, 2, 1, BJERRUM_WATER);
        assert!(k21 > k11, "divalent salt screens more strongly");
    }

    #[test]
    fn lj_repulsive_inside_attractive_outside_minimum() {
        let ff = ForceField::default();
        let sigma = 0.3;
        // Inside the minimum (r < 2^(1/6) σ) the force pushes apart
        // (positive f_over_r).
        let r_in = 0.9 * sigma;
        let (_, f_in) = ff.pair(r_in * r_in, 0.0, 0.0, sigma);
        assert!(f_in > 0.0);
        // Between minimum and cutoff: attractive.
        let r_out = 1.5 * sigma;
        let (_, f_out) = ff.pair(r_out * r_out, 0.0, 0.0, sigma);
        assert!(f_out < 0.0);
    }

    #[test]
    fn lj_energy_continuous_at_cutoff() {
        let ff = ForceField::default();
        let sigma = 0.3;
        let rc = ff.lj_cutoff_factor * sigma;
        let (e_in, _) = ff.pair((rc * 0.999) * (rc * 0.999), 0.0, 0.0, sigma);
        let (e_out, _) = ff.pair((rc * 1.001) * (rc * 1.001), 0.0, 0.0, sigma);
        assert!(e_in.abs() < 1e-3, "shifted LJ ≈ 0 just inside cutoff: {e_in}");
        assert_eq!(e_out, 0.0);
    }

    #[test]
    fn yukawa_sign_follows_charges() {
        let ff = ForceField {
            kappa: 1.0,
            ..Default::default()
        };
        let r = 1.0;
        // Like charges repel: positive energy, positive f_over_r.
        let (e_pp, f_pp) = ff.pair(r * r, 1.0, 1.0, 0.01);
        assert!(e_pp > 0.0 && f_pp > 0.0);
        // Opposite charges attract.
        let (e_pn, f_pn) = ff.pair(r * r, 1.0, -1.0, 0.01);
        assert!(e_pn < 0.0 && f_pn < 0.0);
    }

    #[test]
    fn yukawa_screening_reduces_energy() {
        let weak = ForceField {
            kappa: 0.5,
            ..Default::default()
        };
        let strong = ForceField {
            kappa: 3.0,
            ..Default::default()
        };
        let r: f64 = 1.2;
        let (e_weak, _) = weak.pair(r * r, 1.0, 1.0, 0.01);
        let (e_strong, _) = strong.pair(r * r, 1.0, 1.0, 0.01);
        assert!(e_strong < e_weak, "stronger screening → weaker interaction");
    }

    #[test]
    fn pair_force_matches_numerical_derivative() {
        let ff = ForceField {
            kappa: 1.3,
            ..Default::default()
        };
        let sigma = 0.3;
        for &r in &[0.28, 0.33, 0.5, 1.0, 2.0] {
            let eps = 1e-7;
            let (e_hi, _) = ff.pair((r + eps) * (r + eps), 1.0, -1.0, sigma);
            let (e_lo, _) = ff.pair((r - eps) * (r - eps), 1.0, -1.0, sigma);
            let f_numeric = -(e_hi - e_lo) / (2.0 * eps);
            let (_, f_over_r) = ff.pair(r * r, 1.0, -1.0, sigma);
            let f_analytic = f_over_r * r;
            assert!(
                (f_numeric - f_analytic).abs() < 1e-4 * (1.0 + f_analytic.abs()),
                "r={r}: numeric {f_numeric} vs analytic {f_analytic}"
            );
        }
    }

    #[test]
    fn wall_confines_from_both_sides() {
        let ff = ForceField::default();
        let h = 3.0;
        // Near the lower wall: pushed up.
        let (_, f_lo) = ff.wall(0.05, h);
        assert!(f_lo > 0.0, "lower wall pushes up, got {f_lo}");
        // Near the upper wall: pushed down.
        let (_, f_hi) = ff.wall(h - 0.05, h);
        assert!(f_hi < 0.0, "upper wall pushes down, got {f_hi}");
        // Mid-slab: free.
        let (e_mid, f_mid) = ff.wall(h / 2.0, h);
        assert_eq!(e_mid, 0.0);
        assert_eq!(f_mid, 0.0);
    }

    #[test]
    fn wall_force_matches_numerical_derivative() {
        let ff = ForceField::default();
        let h = 2.0;
        for &z in &[0.1, 0.15, 0.2] {
            let eps = 1e-7;
            let (e_hi, _) = ff.wall(z + eps, h);
            let (e_lo, _) = ff.wall(z - eps, h);
            let f_numeric = -(e_hi - e_lo) / (2.0 * eps);
            let (_, f_analytic) = ff.wall(z, h);
            assert!(
                (f_numeric - f_analytic).abs() < 1e-3 * (1.0 + f_analytic.abs()),
                "z={z}: numeric {f_numeric} vs analytic {f_analytic}"
            );
        }
    }

    #[test]
    fn newtons_third_law_total_force_zero() {
        // With only pair forces (no walls active mid-slab), total force = 0.
        let bbox = SlabBox::new(8.0, 8.0, 8.0).unwrap();
        let mut sys = System::new(bbox);
        let mut rng = Rng::new(21);
        sys.insert_species(
            Species {
                valency: 1,
                diameter: 0.3,
                mass: 1.0,
            },
            30,
            1.0,
            &mut rng,
        )
        .unwrap();
        sys.insert_species(
            Species {
                valency: -1,
                diameter: 0.3,
                mass: 1.0,
            },
            30,
            1.0,
            &mut rng,
        )
        .unwrap();
        // Keep all particles away from walls so wall forces vanish.
        for r in &mut sys.pos {
            r[2] = 2.0 + 4.0 * (r[2] / 8.0);
        }
        let ff = ForceField {
            kappa: debye_kappa(0.2, 1, 1, BJERRUM_WATER),
            ..Default::default()
        };
        let cells = CellList::build(bbox, ff.max_cutoff(0.3), &sys.pos);
        compute_forces(&mut sys, &ff, &cells);
        let mut total = [0.0f64; 3];
        for f in &sys.force {
            for k in 0..3 {
                total[k] += f[k];
            }
        }
        for k in 0..3 {
            assert!(
                total[k].abs() < 1e-9,
                "Newton's third law violated in component {k}: {}",
                total[k]
            );
        }
    }

    #[test]
    fn chunked_forces_match_bruteforce_and_are_repeatable() {
        let bbox = SlabBox::new(7.0, 7.0, 5.0).unwrap();
        let mut sys = System::new(bbox);
        let mut rng = Rng::new(23);
        for valency in [1i32, -1] {
            sys.insert_species(
                Species {
                    valency,
                    diameter: 0.3,
                    mass: 1.0,
                },
                35,
                1.0,
                &mut rng,
            )
            .unwrap();
        }
        let ff = ForceField {
            kappa: 1.2,
            ..Default::default()
        };
        let n = sys.len();
        // Reference: O(N²) double loop with min_image, same pair math.
        let mut ref_force = vec![[0.0f64; 3]; n];
        let mut ref_energy = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                let d = bbox.min_image(&sys.pos[i], &sys.pos[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                let sigma = 0.5 * (sys.diameter[i] + sys.diameter[j]);
                let max_cut = ff.max_cutoff(sigma);
                if r2 > max_cut * max_cut {
                    continue;
                }
                let (e, f_over_r) = ff.pair(r2.max(1e-6), sys.charge[i], sys.charge[j], sigma);
                ref_energy += e;
                for k in 0..3 {
                    ref_force[i][k] += f_over_r * d[k];
                    ref_force[j][k] -= f_over_r * d[k];
                }
            }
        }
        for i in 0..n {
            let (e, fz) = ff.wall(sys.pos[i][2], bbox.h);
            ref_energy += e;
            ref_force[i][2] += fz;
        }
        let cells = CellList::build(bbox, ff.max_cutoff(0.3), &sys.pos);
        let mut scratch = ForceScratch::new();
        let e1 = compute_forces_with(&mut sys, &ff, &cells, &mut scratch);
        assert!((e1 - ref_energy).abs() < 1e-9 * (1.0 + ref_energy.abs()));
        for i in 0..n {
            for k in 0..3 {
                assert!(
                    (sys.force[i][k] - ref_force[i][k]).abs() < 1e-9,
                    "force mismatch at particle {i} axis {k}"
                );
            }
        }
        // Scratch reuse must be bit-identical call over call.
        let forces_1 = sys.force.clone();
        let e2 = compute_forces_with(&mut sys, &ff, &cells, &mut scratch);
        assert_eq!(e1.to_bits(), e2.to_bits());
        for (a, b) in forces_1.iter().zip(sys.force.iter()) {
            for k in 0..3 {
                assert_eq!(a[k].to_bits(), b[k].to_bits());
            }
        }
    }

    #[test]
    fn compute_forces_returns_finite_energy() {
        let bbox = SlabBox::new(5.0, 5.0, 3.0).unwrap();
        let mut sys = System::new(bbox);
        let mut rng = Rng::new(22);
        sys.insert_species(
            Species {
                valency: 1,
                diameter: 0.3,
                mass: 1.0,
            },
            40,
            1.0,
            &mut rng,
        )
        .unwrap();
        sys.insert_species(
            Species {
                valency: -1,
                diameter: 0.3,
                mass: 1.0,
            },
            40,
            1.0,
            &mut rng,
        )
        .unwrap();
        let ff = ForceField {
            kappa: 1.0,
            ..Default::default()
        };
        let cells = CellList::build(bbox, ff.max_cutoff(0.3), &sys.pos);
        let e = compute_forces(&mut sys, &ff, &cells);
        assert!(e.is_finite());
        assert!(sys.force.iter().all(|f| f.iter().all(|x| x.is_finite())));
    }
}
