#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed dimensions (k in 0..3, stencils) are the
// clearer idiom in numeric kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! `le-mdsim` — the molecular-dynamics substrate (§II-C).
//!
//! The paper's flagship MLaroundHPC example (refs \[26\], \[9\]) learns the
//! outputs of *nanoconfinement* simulations: ions of valency `z_p`/`z_n`,
//! diameter `d`, at salt concentration `c`, confined between two planar
//! walls a distance `h` apart; the quantities of interest are the contact,
//! mid-plane, and peak ionic densities. This crate implements that
//! simulation end to end, from scratch:
//!
//! * [`system`] — particle storage and the slab simulation box (periodic in
//!   x/y, walls in z).
//! * [`forces`] — truncated-shifted Lennard-Jones, screened-Coulomb
//!   (Yukawa) electrostatics, and LJ 9-3 confining walls.
//! * [`celllist`] — linked-cell neighbor search making force evaluation
//!   O(N).
//! * [`integrate`] — velocity-Verlet and Langevin (BAOAB-splitting)
//!   integrators with kinetic/potential energy tracking.
//! * [`sample`] — z-density profiles with block averaging, contact/mid/peak
//!   extraction, autocorrelation-aware sampling (§III-D blocking).
//! * [`nanoconfinement`] — the full scenario: parameters → simulation →
//!   [`nanoconfinement::DensityOutputs`]; this is the "expensive ground
//!   truth" that surrogates learn in E2/E3/E5.
//! * [`reference`] — a deliberately expensive analytic many-body potential
//!   standing in for DFT (the substitution documented in DESIGN.md), used
//!   to train the Behler–Parrinello network of E6.
//! * [`bp`] — Behler–Parrinello symmetry functions and the per-atom NN
//!   potential (paper refs \[30\]–\[33\]).
//! * [`solvent`] — explicit-solvent cost decomposition and the NN-implicit
//!   solvent substitution of E10.

pub mod bp;
pub mod celllist;
pub mod forces;
pub mod integrate;
pub mod nanoconfinement;
pub mod reference;
pub mod sample;
pub mod solvent;
pub mod system;

pub use nanoconfinement::{DensityOutputs, NanoParams, NanoSim, SimConfig};
pub use system::{SlabBox, System};

/// Errors from the MD substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MdError {
    /// A physical parameter is outside its valid range.
    InvalidParam(String),
    /// The integration diverged (NaN/inf or runaway energy).
    Unstable {
        /// Step at which divergence was detected.
        step: usize,
        /// What blew up.
        reason: String,
    },
    /// Internal shape/size mismatch.
    Internal(String),
}

impl std::fmt::Display for MdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdError::InvalidParam(s) => write!(f, "invalid parameter: {s}"),
            MdError::Unstable { step, reason } => {
                write!(f, "simulation unstable at step {step}: {reason}")
            }
            MdError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for MdError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MdError>;
