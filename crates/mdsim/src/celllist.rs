//! Linked-cell neighbor search in CSR (counting-sort) layout.
//!
//! Divides the slab into cells at least `cutoff` wide; each particle only
//! interacts with particles in its own and the 26 neighboring cells,
//! making force evaluation O(N) instead of O(N²). Cells are periodic in
//! x/y and clamped in z (walls).
//!
//! Particle membership is stored as a CSR array (`starts` offsets into a
//! cell-sorted `items` array) rather than the classic head/next linked
//! chains: pair traversal then walks contiguous index slices instead of
//! chasing pointers, and a cell's occupants are available as a slice —
//! which is what lets [`CellList::for_each_pair_dist`] compute
//! displacements inline (branch-based minimum image, no divisions) and
//! what the row-parallel force decomposition in `forces.rs` builds on.

use crate::system::{SlabBox, Vec3};

/// Half-shell stencil: each cell interacts with itself and 13 forward
/// neighbors, so every cell pair is visited exactly once.
const HALF_STENCIL: [(i64, i64, i64); 13] = [
    (1, 0, 0),
    (-1, 1, 0),
    (0, 1, 0),
    (1, 1, 0),
    (-1, -1, 1),
    (0, -1, 1),
    (1, -1, 1),
    (-1, 0, 1),
    (0, 0, 1),
    (1, 0, 1),
    (-1, 1, 1),
    (0, 1, 1),
    (1, 1, 1),
];

/// Cell decomposition of a [`SlabBox`].
#[derive(Debug, Clone)]
pub struct CellList {
    nx: usize,
    ny: usize,
    nz: usize,
    /// CSR offsets: cell `c` holds `items[starts[c]..starts[c + 1]]`.
    starts: Vec<usize>,
    /// Particle indices sorted by cell (ascending index within a cell).
    items: Vec<usize>,
    bbox: SlabBox,
}

impl CellList {
    /// Build a cell list for `positions` with the given interaction cutoff.
    /// Falls back to a single cell per axis when the box is smaller than the
    /// cutoff (which degrades to the O(N²) all-pairs loop — still correct).
    pub fn build(bbox: SlabBox, cutoff: f64, positions: &[Vec3]) -> Self {
        debug_assert!(cutoff > 0.0);
        let nx = (bbox.lx / cutoff).floor().max(1.0) as usize;
        let ny = (bbox.ly / cutoff).floor().max(1.0) as usize;
        let nz = (bbox.h / cutoff).floor().max(1.0) as usize;
        let n_cells = nx * ny * nz;
        let mut list = Self {
            nx,
            ny,
            nz,
            starts: vec![0; n_cells + 1],
            items: vec![0; positions.len()],
            bbox,
        };
        // Counting sort: count per cell, prefix-sum, then a forward fill so
        // indices stay ascending within each cell (deterministic order).
        // Binning multiplies by precomputed reciprocals — three fdivs per
        // particle would otherwise dominate the build.
        let sx = 1.0 / bbox.lx;
        let sy = 1.0 / bbox.ly;
        let sz = 1.0 / bbox.h;
        let cell_ids: Vec<usize> = positions
            .iter()
            .map(|r| {
                let fx = (r[0] * sx).rem_euclid(1.0);
                let fy = (r[1] * sy).rem_euclid(1.0);
                let fz = (r[2] * sz).clamp(0.0, 1.0 - 1e-12);
                let ix = ((fx * nx as f64) as usize).min(nx - 1);
                let iy = ((fy * ny as f64) as usize).min(ny - 1);
                let iz = ((fz * nz as f64) as usize).min(nz - 1);
                (iz * ny + iy) * nx + ix
            })
            .collect();
        for &c in &cell_ids {
            list.starts[c + 1] += 1;
        }
        for c in 0..n_cells {
            list.starts[c + 1] += list.starts[c];
        }
        let mut cursor = list.starts.clone();
        for (i, &c) in cell_ids.iter().enumerate() {
            list.items[cursor[c]] = i;
            cursor[c] += 1;
        }
        list
    }

    /// Grid shape `(nx, ny, nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of particles the list was built over.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the list holds no particles.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Gather `pos` into cell-sorted order (`out[p] == pos[items[p]]`),
    /// reusing `out`'s allocation. A traversal that streams this snapshot
    /// reads positions contiguously instead of gathering through the index
    /// indirection on every candidate pair — the caller must re-gather
    /// whenever positions change (the cell list itself may be stale by up
    /// to the rebuild interval; the snapshot must never be).
    pub fn gather(&self, pos: &[Vec3], out: &mut Vec<Vec3>) {
        out.clear();
        out.extend(self.items.iter().map(|&i| pos[i]));
    }

    /// Occupants of cell `c` as a contiguous slice.
    #[inline]
    fn cell(&self, c: usize) -> &[usize] {
        &self.items[self.starts[c]..self.starts[c + 1]]
    }

    /// With fewer than 3 cells along an axis the half stencil would alias
    /// cells; such grids use the O(N²) fallback.
    #[inline]
    fn small(&self) -> bool {
        self.nx < 3 || self.ny < 3 || self.nz < 3
    }

    /// Minimum-image displacement `ri - rj` for in-box coordinates:
    /// compare-and-shift on the periodic axes instead of a divide+round,
    /// exact for any `|Δ| < L` (which box-wrapped positions guarantee).
    #[inline]
    fn disp(&self, ri: &Vec3, rj: &Vec3) -> Vec3 {
        let mut dx = ri[0] - rj[0];
        let hx = 0.5 * self.bbox.lx;
        if dx > hx {
            dx -= self.bbox.lx;
        } else if dx < -hx {
            dx += self.bbox.lx;
        }
        let mut dy = ri[1] - rj[1];
        let hy = 0.5 * self.bbox.ly;
        if dy > hy {
            dy -= self.bbox.ly;
        } else if dy < -hy {
            dy += self.bbox.ly;
        }
        [dx, dy, ri[2] - rj[2]]
    }

    /// Visit each interacting cell pair whose **origin** cell lies in row
    /// `row` (a fixed `(iy, iz)` line of `nx` cells). `f(c, c2)` gets the
    /// origin cell index and a neighbor cell index; `c == c2` marks the
    /// intra-cell case. Empty cells are skipped.
    fn visit_row_cells(&self, row: usize, f: &mut impl FnMut(usize, usize)) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let iz = row / ny;
        let iy = row % ny;
        // Only the x offset varies along the row: resolve each stencil
        // entry's wrapped (jy, jz) to a row base once up front. Offsets are
        // ±1 and the grid is ≥3 cells per axis here, so a single
        // compare-and-shift wraps exactly like `rem_euclid` — without the
        // two integer divisions per stencil entry per cell.
        let mut bases = [(0usize, 0i64); HALF_STENCIL.len()];
        let mut n_bases = 0;
        for &(dx, dy, dz) in &HALF_STENCIL {
            let jz = iz as i64 + dz;
            if jz < 0 || jz >= nz as i64 {
                continue; // walls: no z wrap
            }
            let mut jy = iy as i64 + dy;
            if jy < 0 {
                jy += ny as i64;
            } else if jy >= ny as i64 {
                jy -= ny as i64;
            }
            bases[n_bases] = ((jz as usize * ny + jy as usize) * nx, dx);
            n_bases += 1;
        }
        let row_base = (iz * ny + iy) * nx;
        for ix in 0..nx {
            let c = row_base + ix;
            if self.starts[c] == self.starts[c + 1] {
                continue;
            }
            f(c, c);
            for &(base2, dx) in &bases[..n_bases] {
                let mut jx = ix as i64 + dx;
                if jx < 0 {
                    jx += nx as i64;
                } else if jx >= nx as i64 {
                    jx -= nx as i64;
                }
                let c2 = base2 + jx as usize;
                if self.starts[c2] != self.starts[c2 + 1] {
                    f(c, c2);
                }
            }
        }
    }

    /// Number of independent pair-visit tasks. On the stencil path each
    /// task is one `(iy, iz)` cell row (every unordered pair belongs to
    /// exactly one origin row); small grids use strided slices of the
    /// all-pairs outer loop. A pure function of the grid and particle
    /// count — never of the thread count — so any grouping of tasks
    /// reproduces the same pair partition.
    pub fn n_pair_tasks(&self) -> usize {
        if self.small() {
            let n = self.items.len();
            if n < 64 {
                1
            } else {
                8
            }
        } else {
            self.ny * self.nz
        }
    }

    /// Visit every unordered particle pair whose origin falls in task
    /// `task` (see [`CellList::n_pair_tasks`]), passing the minimum-image
    /// displacement `pos[i] - pos[j]` and its squared norm. Tasks
    /// partition the pairs: over all tasks each unordered pair is visited
    /// exactly once.
    pub fn for_each_pair_dist_in_task(
        &self,
        task: usize,
        pos: &[Vec3],
        mut f: impl FnMut(usize, usize, Vec3, f64),
    ) {
        if self.small() {
            self.small_pairs_dist(task, pos, &mut f);
        } else {
            let mut gathered = Vec::new();
            self.gather(pos, &mut gathered);
            self.stencil_pairs_dist(task, &gathered, &mut f);
        }
    }

    /// [`CellList::for_each_pair_dist_in_task`] with a pre-gathered
    /// cell-ordered position snapshot (see [`CellList::gather`]): the
    /// stencil inner loops stream `gathered` contiguously instead of
    /// indirecting through the item indices per candidate pair. `pos` is
    /// still consulted on the small-grid fallback (which ignores cells).
    /// Emits exactly the same pairs, displacements, and call order as the
    /// plain variant, bit for bit.
    pub fn for_each_pair_dist_in_task_cached(
        &self,
        task: usize,
        pos: &[Vec3],
        gathered: &[Vec3],
        mut f: impl FnMut(usize, usize, Vec3, f64),
    ) {
        if self.small() {
            self.small_pairs_dist(task, pos, &mut f);
        } else {
            debug_assert_eq!(gathered.len(), self.items.len());
            self.stencil_pairs_dist(task, gathered, &mut f);
        }
    }

    /// Strided all-pairs slice of the small-grid fallback.
    fn small_pairs_dist(&self, task: usize, pos: &[Vec3], f: &mut impl FnMut(usize, usize, Vec3, f64)) {
        let n = self.items.len();
        let stride = self.n_pair_tasks();
        let mut i = task;
        while i < n {
            for j in i + 1..n {
                let d = self.disp(&pos[i], &pos[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                f(i, j, d, r2);
            }
            i += stride;
        }
    }

    /// Stencil-path pair walk for one origin row, fused: row → neighbor
    /// spans → zipped (index, position) slices, with the minimum image
    /// inlined (compare-and-shift on hoisted box half-widths, no
    /// divisions). The visit order is a pure function of the grid and the
    /// build order — never of the thread count — which is all the
    /// deterministic force decomposition needs.
    fn stencil_pairs_dist(
        &self,
        task: usize,
        gathered: &[Vec3],
        f: &mut impl FnMut(usize, usize, Vec3, f64),
    ) {
        let lx = self.bbox.lx;
        let hx = 0.5 * lx;
        let ly = self.bbox.ly;
        let hy = 0.5 * ly;
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let iz = task / ny;
        let iy = task % ny;
        // The half stencil groups into the +x cell of the origin row plus
        // four neighbor x-rows (y+1 on this plane; y-1, y, y+1 on the z+1
        // plane). Within each neighbor row the dx = -1, 0, 1 cells are
        // consecutive, so away from the x boundary they form ONE contiguous
        // CSR span — merged inner loops run ~3 cells long instead of paying
        // loop setup and exit misprediction per near-empty cell. Offsets
        // are ±1 and the grid is ≥3 cells per axis here, so
        // compare-and-shift wraps exactly like `rem_euclid` without its
        // integer divisions.
        let wrap_y = |jy: i64| -> usize {
            if jy < 0 {
                (jy + ny as i64) as usize
            } else if jy >= ny as i64 {
                (jy - ny as i64) as usize
            } else {
                jy as usize
            }
        };
        let mut span_bases = [0usize; 4];
        span_bases[0] = (iz * ny + wrap_y(iy as i64 + 1)) * nx;
        let mut n_spans = 1;
        if iz + 1 < nz {
            // walls: no z wrap — the top row has no z+1 spans
            for dy in [-1i64, 0, 1] {
                span_bases[n_spans] = ((iz + 1) * ny + wrap_y(iy as i64 + dy)) * nx;
                n_spans += 1;
            }
        }
        let mut emit = |i: usize, pi: Vec3, j: usize, pj: &Vec3| {
            let mut dx = pi[0] - pj[0];
            if dx > hx {
                dx -= lx;
            } else if dx < -hx {
                dx += lx;
            }
            let mut dy = pi[1] - pj[1];
            if dy > hy {
                dy -= ly;
            } else if dy < -hy {
                dy += ly;
            }
            let dz = pi[2] - pj[2];
            let r2 = dx * dx + dy * dy + dz * dz;
            f(i, j, [dx, dy, dz], r2);
        };
        let row_base = (iz * ny + iy) * nx;
        for ix in 0..nx {
            let c = row_base + ix;
            let (a0, a1) = (self.starts[c], self.starts[c + 1]);
            if a0 == a1 {
                continue;
            }
            let ia = &self.items[a0..a1];
            let pa = &gathered[a0..a1];
            // Intra-cell pairs.
            for (p, (&i, pi)) in ia.iter().zip(pa).enumerate() {
                for (&j, pj) in ia[p + 1..].iter().zip(&pa[p + 1..]) {
                    emit(i, *pi, j, pj);
                }
            }
            // All origin atoms against the CSR span covering cells
            // `c_lo..c_hi` of a neighbor row.
            let mut emit_span = |c_lo: usize, c_hi: usize| {
                let (b0, b1) = (self.starts[c_lo], self.starts[c_hi]);
                if b0 == b1 {
                    return;
                }
                let ib = &self.items[b0..b1];
                let pb = &gathered[b0..b1];
                for (&i, pi) in ia.iter().zip(pa) {
                    for (&j, pj) in ib.iter().zip(pb) {
                        emit(i, *pi, j, pj);
                    }
                }
            };
            // +x neighbor in the origin row (wrapped).
            let jx = if ix + 1 == nx { 0 } else { ix + 1 };
            emit_span(row_base + jx, row_base + jx + 1);
            // The four neighbor rows as dx = -1..=1 spans; boundary columns
            // split into two wrapped runs (dx order preserved).
            for &sb in &span_bases[..n_spans] {
                if ix == 0 {
                    emit_span(sb + nx - 1, sb + nx);
                    emit_span(sb, sb + 2);
                } else if ix + 1 == nx {
                    emit_span(sb + nx - 2, sb + nx);
                    emit_span(sb, sb + 1);
                } else {
                    emit_span(sb + ix - 1, sb + ix + 2);
                }
            }
        }
    }

    /// Visit every unordered particle pair within neighboring cells with
    /// its minimum-image displacement and squared distance — the fast path
    /// for force loops (no divisions, contiguous CSR slices). Gathers a
    /// cell-ordered position snapshot once and streams it.
    pub fn for_each_pair_dist(&self, pos: &[Vec3], mut f: impl FnMut(usize, usize, Vec3, f64)) {
        let mut gathered = Vec::new();
        if !self.small() {
            self.gather(pos, &mut gathered);
        }
        for task in 0..self.n_pair_tasks() {
            self.for_each_pair_dist_in_task_cached(task, pos, &gathered, &mut f);
        }
    }

    /// Visit every unordered particle pair within neighboring cells.
    /// `f(i, j)` is called exactly once per pair with `i < j` not guaranteed
    /// — but each unordered pair is visited exactly once.
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize)) {
        if self.small() {
            let n = self.items.len();
            for i in 0..n {
                for j in i + 1..n {
                    f(i, j);
                }
            }
            return;
        }
        for row in 0..self.ny * self.nz {
            self.visit_row_cells(row, &mut |c, c2| {
                let a = self.cell(c);
                if c == c2 {
                    for (p, &i) in a.iter().enumerate() {
                        for &j in &a[p + 1..] {
                            f(i, j);
                        }
                    }
                } else {
                    for &i in a {
                        for &j in self.cell(c2) {
                            f(i, j);
                        }
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;
    use std::collections::HashSet;

    fn random_positions(n: usize, bbox: &SlabBox, seed: u64) -> Vec<Vec3> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                [
                    rng.uniform_in(0.0, bbox.lx),
                    rng.uniform_in(0.0, bbox.ly),
                    rng.uniform_in(1e-3, bbox.h - 1e-3),
                ]
            })
            .collect()
    }

    /// Brute-force neighbor pairs within cutoff (minimum image).
    fn brute_pairs(bbox: &SlabBox, cutoff: f64, pos: &[Vec3]) -> HashSet<(usize, usize)> {
        let mut out = HashSet::new();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let d = bbox.min_image(&pos[i], &pos[j]);
                if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                    out.insert((i, j));
                }
            }
        }
        out
    }

    fn cell_pairs(bbox: SlabBox, cutoff: f64, pos: &[Vec3]) -> (HashSet<(usize, usize)>, usize) {
        let cl = CellList::build(bbox, cutoff, pos);
        let mut within = HashSet::new();
        let mut visited = 0usize;
        cl.for_each_pair(|i, j| {
            visited += 1;
            let d = bbox.min_image(&pos[i], &pos[j]);
            if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                within.insert((i.min(j), i.max(j)));
            }
        });
        (within, visited)
    }

    #[test]
    fn finds_all_pairs_within_cutoff_large_box() {
        let bbox = SlabBox::new(12.0, 12.0, 9.0).unwrap();
        let pos = random_positions(300, &bbox, 11);
        let cutoff = 2.0;
        let brute = brute_pairs(&bbox, cutoff, &pos);
        let (cell, _) = cell_pairs(bbox, cutoff, &pos);
        assert_eq!(cell, brute, "cell list must find exactly the brute-force pairs");
    }

    #[test]
    fn finds_all_pairs_small_box_fallback() {
        // Box smaller than 3 cells per axis triggers the fallback path.
        let bbox = SlabBox::new(3.0, 3.0, 2.0).unwrap();
        let pos = random_positions(60, &bbox, 12);
        let cutoff = 1.5;
        let brute = brute_pairs(&bbox, cutoff, &pos);
        let (cell, _) = cell_pairs(bbox, cutoff, &pos);
        assert_eq!(cell, brute);
    }

    #[test]
    fn no_pair_visited_twice_large_grid() {
        let bbox = SlabBox::new(15.0, 15.0, 12.0).unwrap();
        let pos = random_positions(200, &bbox, 13);
        let cl = CellList::build(bbox, 2.0, &pos);
        let mut seen = HashSet::new();
        cl.for_each_pair(|i, j| {
            assert_ne!(i, j, "self pair");
            let key = (i.min(j), i.max(j));
            assert!(seen.insert(key), "pair {key:?} visited twice");
        });
    }

    #[test]
    fn visited_pairs_scale_sub_quadratically() {
        let bbox = SlabBox::new(30.0, 30.0, 30.0).unwrap();
        let n = 1000;
        let pos = random_positions(n, &bbox, 14);
        let (_, visited) = cell_pairs(bbox, 2.0, &pos);
        let all_pairs = n * (n - 1) / 2;
        assert!(
            visited < all_pairs / 10,
            "cell list visited {visited} of {all_pairs} pairs — not O(N)"
        );
    }

    #[test]
    fn empty_and_single_particle() {
        let bbox = SlabBox::new(5.0, 5.0, 5.0).unwrap();
        let cl = CellList::build(bbox, 1.0, &[]);
        let mut count = 0;
        cl.for_each_pair(|_, _| count += 1);
        assert_eq!(count, 0);
        let cl1 = CellList::build(bbox, 1.0, &[[1.0, 1.0, 1.0]]);
        cl1.for_each_pair(|_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn dist_walk_matches_min_image_and_partitions_pairs() {
        for (dims, n, seed) in [((12.0, 12.0, 9.0), 250, 51u64), ((3.0, 3.0, 2.0), 70, 52)] {
            let bbox = SlabBox::new(dims.0, dims.1, dims.2).unwrap();
            let pos = random_positions(n, &bbox, seed);
            let cl = CellList::build(bbox, 1.5, &pos);
            // Union over tasks == for_each_pair's pair set, each pair once,
            // and the inline displacement equals SlabBox::min_image.
            let mut seen = HashSet::new();
            for task in 0..cl.n_pair_tasks() {
                cl.for_each_pair_dist_in_task(task, &pos, |i, j, d, r2| {
                    assert!(seen.insert((i.min(j), i.max(j))), "pair revisited");
                    let m = bbox.min_image(&pos[i], &pos[j]);
                    for k in 0..3 {
                        assert!((d[k] - m[k]).abs() < 1e-12, "disp axis {k}");
                    }
                    let m2 = m[0] * m[0] + m[1] * m[1] + m[2] * m[2];
                    assert!((r2 - m2).abs() < 1e-12);
                });
            }
            let mut plain = HashSet::new();
            cl.for_each_pair(|i, j| {
                plain.insert((i.min(j), i.max(j)));
            });
            assert_eq!(seen, plain);
            // The gathered-snapshot variant must replay the plain variant
            // exactly: same pairs, same order, bitwise-equal displacements.
            let mut gathered = Vec::new();
            cl.gather(&pos, &mut gathered);
            for task in 0..cl.n_pair_tasks() {
                let mut a: Vec<(usize, usize, [u64; 3], u64)> = Vec::new();
                cl.for_each_pair_dist_in_task(task, &pos, |i, j, d, r2| {
                    a.push((i, j, d.map(f64::to_bits), r2.to_bits()));
                });
                let mut b = Vec::new();
                cl.for_each_pair_dist_in_task_cached(task, &pos, &gathered, |i, j, d, r2| {
                    b.push((i, j, d.map(f64::to_bits), r2.to_bits()));
                });
                assert_eq!(a, b, "cached variant diverged on task {task}");
            }
        }
    }

    #[test]
    fn boundary_positions_are_binned() {
        let bbox = SlabBox::new(5.0, 5.0, 5.0).unwrap();
        // Exactly on the edges — binning must not panic or index out of
        // range, and the wrap-around x pair must be found.
        let pos = vec![[0.05, 2.5, 2.5], [4.95, 2.5, 2.5], [5.0, 5.0, 5.0]];
        let cl = CellList::build(bbox, 1.0, &pos);
        let (nx, ny, nz) = cl.shape();
        assert_eq!((nx, ny, nz), (5, 5, 5));
        let mut found_wrap_pair = false;
        cl.for_each_pair(|i, j| {
            if (i.min(j), i.max(j)) == (0, 1) {
                found_wrap_pair = true;
            }
        });
        assert!(
            found_wrap_pair,
            "periodic x neighbors (0.05 and 4.95) must be paired"
        );
    }
}
