//! Linked-cell neighbor search.
//!
//! Divides the slab into cells at least `cutoff` wide; each particle only
//! interacts with particles in its own and the 26 neighboring cells,
//! making force evaluation O(N) instead of O(N²). Cells are periodic in
//! x/y and clamped in z (walls).

use crate::system::{SlabBox, Vec3};

/// Cell decomposition of a [`SlabBox`].
#[derive(Debug, Clone)]
pub struct CellList {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Head-of-chain particle index per cell (usize::MAX = empty).
    head: Vec<usize>,
    /// Next particle in the same cell chain (usize::MAX = end).
    next: Vec<usize>,
    bbox: SlabBox,
}

const NONE: usize = usize::MAX;

impl CellList {
    /// Build a cell list for `positions` with the given interaction cutoff.
    /// Falls back to a single cell per axis when the box is smaller than the
    /// cutoff (which degrades to the O(N²) all-pairs loop — still correct).
    pub fn build(bbox: SlabBox, cutoff: f64, positions: &[Vec3]) -> Self {
        debug_assert!(cutoff > 0.0);
        let nx = (bbox.lx / cutoff).floor().max(1.0) as usize;
        let ny = (bbox.ly / cutoff).floor().max(1.0) as usize;
        let nz = (bbox.h / cutoff).floor().max(1.0) as usize;
        let mut list = Self {
            nx,
            ny,
            nz,
            head: vec![NONE; nx * ny * nz],
            next: vec![NONE; positions.len()],
            bbox,
        };
        for (i, r) in positions.iter().enumerate() {
            let c = list.cell_of(r);
            list.next[i] = list.head[c];
            list.head[c] = i;
        }
        list
    }

    /// Grid shape `(nx, ny, nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    #[inline]
    fn cell_of(&self, r: &Vec3) -> usize {
        // Positions may sit exactly on the upper boundary; clamp.
        let fx = (r[0] / self.bbox.lx).rem_euclid(1.0);
        let fy = (r[1] / self.bbox.ly).rem_euclid(1.0);
        let fz = (r[2] / self.bbox.h).clamp(0.0, 1.0 - 1e-12);
        let ix = ((fx * self.nx as f64) as usize).min(self.nx - 1);
        let iy = ((fy * self.ny as f64) as usize).min(self.ny - 1);
        let iz = ((fz * self.nz as f64) as usize).min(self.nz - 1);
        (iz * self.ny + iy) * self.nx + ix
    }

    /// Visit every unordered particle pair within neighboring cells.
    /// `f(i, j)` is called exactly once per pair with `i < j` not guaranteed
    /// — but each unordered pair is visited exactly once.
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize)) {
        // Half-shell stencil: each cell interacts with itself and 13
        // forward neighbors, so every cell pair is visited once.
        const HALF_STENCIL: [(i64, i64, i64); 13] = [
            (1, 0, 0),
            (-1, 1, 0),
            (0, 1, 0),
            (1, 1, 0),
            (-1, -1, 1),
            (0, -1, 1),
            (1, -1, 1),
            (-1, 0, 1),
            (0, 0, 1),
            (1, 0, 1),
            (-1, 1, 1),
            (0, 1, 1),
            (1, 1, 1),
        ];
        let (nx, ny, nz) = (self.nx as i64, self.ny as i64, self.nz as i64);
        // With fewer than 3 cells along a periodic axis the half stencil
        // would alias cells; collect neighbor pairs in a dedup set instead.
        let small = self.nx < 3 || self.ny < 3 || self.nz < 3;
        if small {
            self.for_each_pair_small(&mut f);
            return;
        }
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let c = ((iz * ny + iy) * nx + ix) as usize;
                    // Intra-cell pairs.
                    let mut i = self.head[c];
                    while i != NONE {
                        let mut j = self.next[i];
                        while j != NONE {
                            f(i, j);
                            j = self.next[j];
                        }
                        i = self.next[i];
                    }
                    // Cross-cell pairs with the forward half-shell.
                    for &(dx, dy, dz) in &HALF_STENCIL {
                        let jx = (ix + dx).rem_euclid(nx);
                        let jy = (iy + dy).rem_euclid(ny);
                        let jz = iz + dz;
                        if jz < 0 || jz >= nz {
                            continue; // walls: no z wrap
                        }
                        let c2 = ((jz * ny + jy) * nx + jx) as usize;
                        let mut i = self.head[c];
                        while i != NONE {
                            let mut j = self.head[c2];
                            while j != NONE {
                                f(i, j);
                                j = self.next[j];
                            }
                            i = self.next[i];
                        }
                    }
                }
            }
        }
    }

    /// Fallback for small grids: enumerate candidate cell pairs with
    /// dedup, then particle pairs (i < j) once each.
    fn for_each_pair_small(&self, f: &mut impl FnMut(usize, usize)) {
        let n = self.next.len();
        for i in 0..n {
            for j in i + 1..n {
                f(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;
    use std::collections::HashSet;

    fn random_positions(n: usize, bbox: &SlabBox, seed: u64) -> Vec<Vec3> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| {
                [
                    rng.uniform_in(0.0, bbox.lx),
                    rng.uniform_in(0.0, bbox.ly),
                    rng.uniform_in(1e-3, bbox.h - 1e-3),
                ]
            })
            .collect()
    }

    /// Brute-force neighbor pairs within cutoff (minimum image).
    fn brute_pairs(bbox: &SlabBox, cutoff: f64, pos: &[Vec3]) -> HashSet<(usize, usize)> {
        let mut out = HashSet::new();
        for i in 0..pos.len() {
            for j in i + 1..pos.len() {
                let d = bbox.min_image(&pos[i], &pos[j]);
                if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                    out.insert((i, j));
                }
            }
        }
        out
    }

    fn cell_pairs(bbox: SlabBox, cutoff: f64, pos: &[Vec3]) -> (HashSet<(usize, usize)>, usize) {
        let cl = CellList::build(bbox, cutoff, pos);
        let mut within = HashSet::new();
        let mut visited = 0usize;
        cl.for_each_pair(|i, j| {
            visited += 1;
            let d = bbox.min_image(&pos[i], &pos[j]);
            if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                within.insert((i.min(j), i.max(j)));
            }
        });
        (within, visited)
    }

    #[test]
    fn finds_all_pairs_within_cutoff_large_box() {
        let bbox = SlabBox::new(12.0, 12.0, 9.0).unwrap();
        let pos = random_positions(300, &bbox, 11);
        let cutoff = 2.0;
        let brute = brute_pairs(&bbox, cutoff, &pos);
        let (cell, _) = cell_pairs(bbox, cutoff, &pos);
        assert_eq!(cell, brute, "cell list must find exactly the brute-force pairs");
    }

    #[test]
    fn finds_all_pairs_small_box_fallback() {
        // Box smaller than 3 cells per axis triggers the fallback path.
        let bbox = SlabBox::new(3.0, 3.0, 2.0).unwrap();
        let pos = random_positions(60, &bbox, 12);
        let cutoff = 1.5;
        let brute = brute_pairs(&bbox, cutoff, &pos);
        let (cell, _) = cell_pairs(bbox, cutoff, &pos);
        assert_eq!(cell, brute);
    }

    #[test]
    fn no_pair_visited_twice_large_grid() {
        let bbox = SlabBox::new(15.0, 15.0, 12.0).unwrap();
        let pos = random_positions(200, &bbox, 13);
        let cl = CellList::build(bbox, 2.0, &pos);
        let mut seen = HashSet::new();
        cl.for_each_pair(|i, j| {
            assert_ne!(i, j, "self pair");
            let key = (i.min(j), i.max(j));
            assert!(seen.insert(key), "pair {key:?} visited twice");
        });
    }

    #[test]
    fn visited_pairs_scale_sub_quadratically() {
        let bbox = SlabBox::new(30.0, 30.0, 30.0).unwrap();
        let n = 1000;
        let pos = random_positions(n, &bbox, 14);
        let (_, visited) = cell_pairs(bbox, 2.0, &pos);
        let all_pairs = n * (n - 1) / 2;
        assert!(
            visited < all_pairs / 10,
            "cell list visited {visited} of {all_pairs} pairs — not O(N)"
        );
    }

    #[test]
    fn empty_and_single_particle() {
        let bbox = SlabBox::new(5.0, 5.0, 5.0).unwrap();
        let cl = CellList::build(bbox, 1.0, &[]);
        let mut count = 0;
        cl.for_each_pair(|_, _| count += 1);
        assert_eq!(count, 0);
        let cl1 = CellList::build(bbox, 1.0, &[[1.0, 1.0, 1.0]]);
        cl1.for_each_pair(|_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn boundary_positions_are_binned() {
        let bbox = SlabBox::new(5.0, 5.0, 5.0).unwrap();
        // Exactly on the edges — binning must not panic or index out of
        // range, and the wrap-around x pair must be found.
        let pos = vec![[0.05, 2.5, 2.5], [4.95, 2.5, 2.5], [5.0, 5.0, 5.0]];
        let cl = CellList::build(bbox, 1.0, &pos);
        let (nx, ny, nz) = cl.shape();
        assert_eq!((nx, ny, nz), (5, 5, 5));
        let mut found_wrap_pair = false;
        cl.for_each_pair(|i, j| {
            if (i.min(j), i.max(j)) == (0, 1) {
                found_wrap_pair = true;
            }
        });
        assert!(
            found_wrap_pair,
            "periodic x neighbors (0.05 and 4.95) must be paired"
        );
    }
}
