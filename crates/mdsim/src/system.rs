//! Particle storage and the slab simulation box.
//!
//! Geometry: the box is periodic in x and y with side lengths `lx`, `ly`,
//! and bounded in z by hard confining walls at `z = 0` and `z = h` (the
//! walls themselves are soft LJ 9-3 potentials applied in `forces`). All
//! lengths are in nanometers, energies in kT, masses in reduced units.

use le_linalg::Rng;

use crate::{MdError, Result};

/// 3-vector helper functions operate on `[f64; 3]` to keep storage flat.
pub type Vec3 = [f64; 3];

/// The slab simulation box: periodic in x/y, confined in z.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlabBox {
    /// Periodic side length in x (nm).
    pub lx: f64,
    /// Periodic side length in y (nm).
    pub ly: f64,
    /// Wall separation in z (nm); walls at z = 0 and z = h.
    pub h: f64,
}

impl SlabBox {
    /// Construct, validating positivity.
    pub fn new(lx: f64, ly: f64, h: f64) -> Result<Self> {
        if lx <= 0.0 || ly <= 0.0 || h <= 0.0 {
            return Err(MdError::InvalidParam(format!(
                "box dimensions must be positive: lx={lx}, ly={ly}, h={h}"
            )));
        }
        Ok(Self { lx, ly, h })
    }

    /// Volume in nm³.
    pub fn volume(&self) -> f64 {
        self.lx * self.ly * self.h
    }

    /// Minimum-image displacement `r_i - r_j` honoring x/y periodicity.
    /// z is not wrapped (walls).
    #[inline]
    pub fn min_image(&self, ri: &Vec3, rj: &Vec3) -> Vec3 {
        let mut dx = ri[0] - rj[0];
        let mut dy = ri[1] - rj[1];
        let dz = ri[2] - rj[2];
        dx -= self.lx * (dx / self.lx).round();
        dy -= self.ly * (dy / self.ly).round();
        [dx, dy, dz]
    }

    /// Wrap a position into the primary cell in x/y; z is left alone.
    #[inline]
    pub fn wrap(&self, r: &mut Vec3) {
        r[0] -= self.lx * (r[0] / self.lx).floor();
        r[1] -= self.ly * (r[1] / self.ly).floor();
    }
}

/// Per-species ion description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Species {
    /// Signed valency (e.g. +1, -1, +2).
    pub valency: i32,
    /// LJ diameter σ in nm.
    pub diameter: f64,
    /// Reduced mass.
    pub mass: f64,
}

/// Structure-of-arrays particle system.
#[derive(Debug, Clone)]
pub struct System {
    /// Simulation box.
    pub bbox: SlabBox,
    /// Positions (nm).
    pub pos: Vec<Vec3>,
    /// Velocities.
    pub vel: Vec<Vec3>,
    /// Forces (kT/nm), filled by the force kernels.
    pub force: Vec<Vec3>,
    /// Signed charge of each particle (units of e).
    pub charge: Vec<f64>,
    /// LJ diameter of each particle (nm).
    pub diameter: Vec<f64>,
    /// Mass of each particle (reduced).
    pub mass: Vec<f64>,
}

impl System {
    /// Empty system in the given box.
    pub fn new(bbox: SlabBox) -> Self {
        Self {
            bbox,
            pos: Vec::new(),
            vel: Vec::new(),
            force: Vec::new(),
            charge: Vec::new(),
            diameter: Vec::new(),
            mass: Vec::new(),
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Insert `count` particles of one species at random non-overlapping
    /// positions (simple rejection against previously placed particles),
    /// velocities drawn from Maxwell–Boltzmann at temperature `temp` (kT).
    pub fn insert_species(
        &mut self,
        species: Species,
        count: usize,
        temp: f64,
        rng: &mut Rng,
    ) -> Result<()> {
        let margin = 0.5 * species.diameter;
        if 2.0 * margin >= self.bbox.h {
            return Err(MdError::InvalidParam(format!(
                "ion diameter {} does not fit in slab of height {}",
                species.diameter, self.bbox.h
            )));
        }
        let v_std = (temp / species.mass).sqrt();
        for _ in 0..count {
            let mut placed = false;
            // Rejection sampling with a generous attempt budget; fall back
            // to accepting the overlap (Langevin dynamics relaxes it).
            for _attempt in 0..200 {
                let candidate: Vec3 = [
                    rng.uniform_in(0.0, self.bbox.lx),
                    rng.uniform_in(0.0, self.bbox.ly),
                    rng.uniform_in(margin, self.bbox.h - margin),
                ];
                let ok = self.pos.iter().enumerate().all(|(j, rj)| {
                    let d = self.bbox.min_image(&candidate, rj);
                    let min_sep = 0.8 * 0.5 * (species.diameter + self.diameter[j]);
                    d[0] * d[0] + d[1] * d[1] + d[2] * d[2] > min_sep * min_sep
                });
                if ok {
                    self.push_particle(candidate, species, v_std, rng);
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Dense system: place anyway at a random point; the soft
                // core plus thermostat will relax it during equilibration.
                let candidate: Vec3 = [
                    rng.uniform_in(0.0, self.bbox.lx),
                    rng.uniform_in(0.0, self.bbox.ly),
                    rng.uniform_in(margin, self.bbox.h - margin),
                ];
                self.push_particle(candidate, species, v_std, rng);
            }
        }
        Ok(())
    }

    fn push_particle(&mut self, pos: Vec3, species: Species, v_std: f64, rng: &mut Rng) {
        self.pos.push(pos);
        self.vel.push([
            rng.gaussian() * v_std,
            rng.gaussian() * v_std,
            rng.gaussian() * v_std,
        ]);
        self.force.push([0.0; 3]);
        self.charge.push(species.valency as f64);
        self.diameter.push(species.diameter);
        self.mass.push(species.mass);
    }

    /// Net charge of the system (units of e).
    pub fn net_charge(&self) -> f64 {
        self.charge.iter().sum()
    }

    /// Instantaneous kinetic energy (kT units since velocities carry kT).
    pub fn kinetic_energy(&self) -> f64 {
        self.vel
            .iter()
            .zip(self.mass.iter())
            .map(|(v, &m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    /// Instantaneous kinetic temperature via equipartition: `2 KE / (3 N)`.
    pub fn temperature(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.kinetic_energy() / (3.0 * self.len() as f64)
    }

    /// Remove center-of-mass drift (applied after velocity initialization).
    pub fn zero_momentum(&mut self) {
        if self.is_empty() {
            return;
        }
        let total_mass: f64 = self.mass.iter().sum();
        let mut p = [0.0f64; 3];
        for (v, &m) in self.vel.iter().zip(self.mass.iter()) {
            for k in 0..3 {
                p[k] += m * v[k];
            }
        }
        for k in 0..3 {
            p[k] /= total_mass;
        }
        for v in &mut self.vel {
            for k in 0..3 {
                v[k] -= p[k];
            }
        }
    }

    /// Check that every position and velocity is finite; returns the first
    /// offending particle index otherwise.
    pub fn validate_finite(&self) -> std::result::Result<(), usize> {
        for (i, (r, v)) in self.pos.iter().zip(self.vel.iter()).enumerate() {
            if r.iter().chain(v.iter()).any(|x| !x.is_finite()) {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_species() -> Species {
        Species {
            valency: 1,
            diameter: 0.3,
            mass: 1.0,
        }
    }

    #[test]
    fn box_validation() {
        assert!(SlabBox::new(3.0, 3.0, 2.0).is_ok());
        assert!(SlabBox::new(0.0, 3.0, 2.0).is_err());
        assert!(SlabBox::new(3.0, -1.0, 2.0).is_err());
    }

    #[test]
    fn min_image_wraps_xy_not_z() {
        let b = SlabBox::new(10.0, 10.0, 5.0).unwrap();
        let d = b.min_image(&[9.5, 0.5, 4.0], &[0.5, 9.5, 1.0]);
        assert!((d[0] + 1.0).abs() < 1e-12, "x wraps: {}", d[0]);
        assert!((d[1] - 1.0).abs() < 1e-12, "y wraps: {}", d[1]);
        assert!((d[2] - 3.0).abs() < 1e-12, "z does not wrap: {}", d[2]);
    }

    #[test]
    fn min_image_is_antisymmetric() {
        let b = SlabBox::new(7.0, 9.0, 4.0).unwrap();
        let ri = [6.8, 0.1, 3.0];
        let rj = [0.2, 8.8, 1.0];
        let dij = b.min_image(&ri, &rj);
        let dji = b.min_image(&rj, &ri);
        for k in 0..3 {
            assert!((dij[k] + dji[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn wrap_moves_into_cell() {
        let b = SlabBox::new(5.0, 5.0, 3.0).unwrap();
        let mut r = [-0.1, 5.2, 10.0];
        b.wrap(&mut r);
        assert!((0.0..5.0).contains(&r[0]));
        assert!((0.0..5.0).contains(&r[1]));
        assert_eq!(r[2], 10.0, "z untouched by wrap");
    }

    #[test]
    fn insertion_places_particles_inside() {
        let b = SlabBox::new(4.0, 4.0, 3.0).unwrap();
        let mut sys = System::new(b);
        let mut rng = Rng::new(1);
        sys.insert_species(test_species(), 50, 1.0, &mut rng).unwrap();
        assert_eq!(sys.len(), 50);
        for r in &sys.pos {
            assert!((0.0..4.0).contains(&r[0]));
            assert!((0.0..4.0).contains(&r[1]));
            assert!(r[2] > 0.0 && r[2] < 3.0, "z in slab: {}", r[2]);
        }
    }

    #[test]
    fn insertion_rejects_oversized_ion() {
        let b = SlabBox::new(4.0, 4.0, 0.2).unwrap();
        let mut sys = System::new(b);
        let mut rng = Rng::new(2);
        assert!(sys.insert_species(test_species(), 1, 1.0, &mut rng).is_err());
    }

    #[test]
    fn maxwell_boltzmann_temperature() {
        let b = SlabBox::new(10.0, 10.0, 10.0).unwrap();
        let mut sys = System::new(b);
        let mut rng = Rng::new(3);
        sys.insert_species(test_species(), 2000, 1.5, &mut rng).unwrap();
        let t = sys.temperature();
        assert!((t - 1.5).abs() < 0.1, "kinetic temperature {t} should be ~1.5");
    }

    #[test]
    fn zero_momentum_zeroes_momentum() {
        let b = SlabBox::new(5.0, 5.0, 5.0).unwrap();
        let mut sys = System::new(b);
        let mut rng = Rng::new(4);
        sys.insert_species(test_species(), 100, 1.0, &mut rng).unwrap();
        sys.zero_momentum();
        let mut p = [0.0f64; 3];
        for (v, &m) in sys.vel.iter().zip(sys.mass.iter()) {
            for k in 0..3 {
                p[k] += m * v[k];
            }
        }
        for k in 0..3 {
            assert!(p[k].abs() < 1e-10, "momentum component {k}: {}", p[k]);
        }
    }

    #[test]
    fn net_charge_counts_valencies() {
        let b = SlabBox::new(5.0, 5.0, 5.0).unwrap();
        let mut sys = System::new(b);
        let mut rng = Rng::new(5);
        sys.insert_species(
            Species {
                valency: 2,
                diameter: 0.3,
                mass: 1.0,
            },
            3,
            1.0,
            &mut rng,
        )
        .unwrap();
        sys.insert_species(
            Species {
                valency: -1,
                diameter: 0.3,
                mass: 1.0,
            },
            6,
            1.0,
            &mut rng,
        )
        .unwrap();
        assert!(sys.net_charge().abs() < 1e-12, "electroneutral");
    }

    #[test]
    fn validate_finite_detects_nan() {
        let b = SlabBox::new(5.0, 5.0, 5.0).unwrap();
        let mut sys = System::new(b);
        let mut rng = Rng::new(6);
        sys.insert_species(test_species(), 3, 1.0, &mut rng).unwrap();
        assert!(sys.validate_finite().is_ok());
        sys.pos[1][2] = f64::NAN;
        assert_eq!(sys.validate_finite(), Err(1));
    }
}
