//! An expensive analytic many-body reference potential standing in for
//! quantum-mechanical (DFT) energy evaluation — the substitution documented
//! in DESIGN.md for experiment E6.
//!
//! The paper (§II-C2, refs \[30\]–\[33\]) describes NN potentials trained on
//! DFT energies that run >1000× faster than the reference they learn. What
//! that experiment needs from the reference is (a) genuine many-body
//! structure, (b) smoothness, (c) a per-atom energy decomposition (the
//! Behler–Parrinello ansatz requires atomic contributions), and (d) a
//! computational cost orders of magnitude above an MLP forward pass. This
//! potential has all four:
//!
//! * a two-body Morse-like term,
//! * a three-body Stillinger–Weber-style angular term (O(N·k²) over
//!   neighbors), and
//! * a *self-consistent charge-equilibration loop*: fictitious per-atom
//!   charges are iterated to a fixed point of a screened coupling (the
//!   analogue of a DFT SCF loop), then contribute an electrostatic energy.
//!
//! The SCF loop dominates the cost, exactly like real DFT.

use crate::system::Vec3;

/// Parameters of the reference potential. Costs scale with `scf_max_iter`.
#[derive(Debug, Clone, Copy)]
pub struct ReferencePotential {
    /// Morse well depth.
    pub de: f64,
    /// Morse width.
    pub a: f64,
    /// Morse equilibrium distance.
    pub r0: f64,
    /// Three-body strength.
    pub lambda: f64,
    /// Interaction cutoff.
    pub rc: f64,
    /// SCF coupling strength (< 1 for contraction).
    pub scf_coupling: f64,
    /// SCF convergence tolerance.
    pub scf_tol: f64,
    /// Maximum SCF iterations.
    pub scf_max_iter: usize,
    /// Electrostatic weight of the converged SCF charges.
    pub elec_weight: f64,
}

impl Default for ReferencePotential {
    fn default() -> Self {
        Self {
            de: 1.0,
            a: 2.0,
            r0: 1.0,
            lambda: 0.4,
            rc: 2.5,
            scf_coupling: 0.6,
            scf_tol: 1e-13,
            scf_max_iter: 200,
            elec_weight: 0.3,
        }
    }
}

/// Result of one reference evaluation.
#[derive(Debug, Clone)]
pub struct ReferenceEnergy {
    /// Total energy.
    pub total: f64,
    /// Per-atom energy decomposition (sums to `total`).
    pub per_atom: Vec<f64>,
    /// SCF iterations used.
    pub scf_iterations: usize,
}

impl ReferencePotential {
    /// Smooth cosine cutoff function f_c(r): 1 at r = 0, 0 at r ≥ rc, C¹.
    #[inline]
    pub fn fc(&self, r: f64) -> f64 {
        if r >= self.rc {
            0.0
        } else {
            0.5 * ((std::f64::consts::PI * r / self.rc).cos() + 1.0)
        }
    }

    /// Evaluate total energy with per-atom decomposition for a free cluster
    /// (no periodic boundary).
    pub fn energy(&self, pos: &[Vec3]) -> ReferenceEnergy {
        let n = pos.len();
        let mut per_atom = vec![0.0; n];
        if n == 0 {
            return ReferenceEnergy {
                total: 0.0,
                per_atom,
                scf_iterations: 0,
            };
        }
        // Pairwise distances within cutoff (cached for the 3-body term and
        // the SCF loop).
        let mut neighbors: Vec<Vec<(usize, f64, Vec3)>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = [
                    pos[i][0] - pos[j][0],
                    pos[i][1] - pos[j][1],
                    pos[i][2] - pos[j][2],
                ];
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                if r < self.rc {
                    neighbors[i].push((j, r, d));
                    neighbors[j].push((i, r, [-d[0], -d[1], -d[2]]));
                }
            }
        }
        // Two-body Morse, half to each atom.
        for i in 0..n {
            for &(j, r, _) in &neighbors[i] {
                if j < i {
                    continue; // each unordered pair once
                }
                let x = (-self.a * (r - self.r0)).exp();
                let u = self.de * (x * x - 2.0 * x) * self.fc(r);
                per_atom[i] += 0.5 * u;
                per_atom[j] += 0.5 * u;
            }
        }
        // Three-body angular term centred on each atom:
        // λ Σ_{j<k} fc(r_ij) fc(r_ik) (cosθ_jik + 1/3)².
        for (i, nbrs) in neighbors.iter().enumerate() {
            for aa in 0..nbrs.len() {
                for bb in (aa + 1)..nbrs.len() {
                    let (_, rj, dj) = nbrs[aa];
                    let (_, rk, dk) = nbrs[bb];
                    let cosang = (dj[0] * dk[0] + dj[1] * dk[1] + dj[2] * dk[2]) / (rj * rk);
                    let term = cosang + 1.0 / 3.0;
                    per_atom[i] += self.lambda * self.fc(rj) * self.fc(rk) * term * term;
                }
            }
        }
        // SCF charge equilibration — the DFT-cost stand-in. Each iteration
        // rebuilds the full long-range coupling kernel over *all* pairs
        // (the analogue of a Fock-matrix rebuild: O(N²) transcendental work
        // per iteration), then damps the fixed-point update
        // q_i ← ½ q_i + ½ tanh(g Σ_j w(r_ij) q_j + s_i).
        let source: Vec<f64> = neighbors
            .iter()
            .map(|nbrs| {
                let coord: f64 = nbrs.iter().map(|&(_, r, _)| self.fc(r)).sum();
                0.1 * (coord - 2.0)
            })
            .collect();
        let mut q = vec![0.0f64; n];
        let mut coupled = vec![0.0f64; n];
        let mut iterations = 0;
        for it in 0..self.scf_max_iter {
            iterations = it + 1;
            // Long-range kernel, recomputed every iteration like a Fock
            // rebuild: a small contracted basis (Gaussian-type shells plus
            // a damped Coulomb tail) is evaluated per pair, as a real
            // integral rebuild would. The kernel is symmetric (w_ij =
            // w_ji), so — as real SCF codes do for Hermitian matrices —
            // each pair integral is evaluated once and scattered to both
            // rows; each row still accumulates its terms in ascending-j
            // order, so the sums match the full square loop bitwise.
            coupled.fill(0.0);
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = pos[i][0] - pos[j][0];
                    let dy = pos[i][1] - pos[j][1];
                    let dz = pos[i][2] - pos[j][2];
                    let r = (dx * dx + dy * dy + dz * dz).sqrt();
                    // t = exp(-r/2rc); the damped-Coulomb tail reuses it as
                    // t² = exp(-r/rc), saving one transcendental per pair.
                    let t = (-r / (2.0 * self.rc)).exp();
                    let s0 = t / (1.0 + r);
                    let s1 = (-0.8 * r * r).exp();
                    let s2 = (-0.3 * r * r).exp() * (1.0 + r * r).ln();
                    let s3 = (1.0 + r).sqrt().recip() * (t * t);
                    let w = s0 + 0.05 * s1 + 0.02 * s2 + 0.03 * s3;
                    coupled[i] += w * q[j];
                    coupled[j] += w * q[i];
                }
            }
            // Damped Jacobi update: `coupled` is built entirely from the
            // previous iterate, so the in-place write is still Jacobi.
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let target = (self.scf_coupling * coupled[i] + source[i]).tanh();
                let qi = 0.5 * q[i] + 0.5 * target;
                max_delta = max_delta.max((qi - q[i]).abs());
                q[i] = qi;
            }
            if max_delta < self.scf_tol {
                break;
            }
        }
        // Electrostatic energy of the converged charges, half per atom.
        for i in 0..n {
            for &(j, r, _) in &neighbors[i] {
                if j < i {
                    continue;
                }
                let u = self.elec_weight * q[i] * q[j] * self.fc(r) / r.max(0.1);
                per_atom[i] += 0.5 * u;
                per_atom[j] += 0.5 * u;
            }
        }
        let total = per_atom.iter().sum();
        ReferenceEnergy {
            total,
            per_atom,
            scf_iterations: iterations,
        }
    }

    /// Numerical force on every atom (−∂E/∂r, central differences).
    /// As with real DFT, forces cost ~6N energy evaluations — this is what
    /// makes driving MD with the reference so expensive, and the NN
    /// potential so valuable.
    pub fn forces_numerical(&self, pos: &[Vec3], eps: f64) -> Vec<Vec3> {
        let mut forces = vec![[0.0; 3]; pos.len()];
        let mut work = pos.to_vec();
        for i in 0..pos.len() {
            for k in 0..3 {
                work[i][k] = pos[i][k] + eps;
                let e_hi = self.energy(&work).total;
                work[i][k] = pos[i][k] - eps;
                let e_lo = self.energy(&work).total;
                work[i][k] = pos[i][k];
                forces[i][k] = -(e_hi - e_lo) / (2.0 * eps);
            }
        }
        forces
    }
}

/// Generate a random compact cluster of `n` atoms with interatomic spacing
/// near `r0` (rejection of overlaps tighter than `0.7 r0`).
pub fn random_cluster(n: usize, r0: f64, spread: f64, rng: &mut le_linalg::Rng) -> Vec<Vec3> {
    let box_side = spread * (n as f64).cbrt() * r0;
    let mut pos: Vec<Vec3> = Vec::with_capacity(n);
    'outer: for _ in 0..n {
        for _ in 0..500 {
            let cand = [
                rng.uniform_in(0.0, box_side),
                rng.uniform_in(0.0, box_side),
                rng.uniform_in(0.0, box_side),
            ];
            let ok = pos.iter().all(|p| {
                let d2 = (p[0] - cand[0]).powi(2)
                    + (p[1] - cand[1]).powi(2)
                    + (p[2] - cand[2]).powi(2);
                d2 > (0.7 * r0) * (0.7 * r0)
            });
            if ok {
                pos.push(cand);
                continue 'outer;
            }
        }
        // Saturated: place anyway.
        pos.push([
            rng.uniform_in(0.0, box_side),
            rng.uniform_in(0.0, box_side),
            rng.uniform_in(0.0, box_side),
        ]);
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;

    #[test]
    fn empty_and_single_atom() {
        let pot = ReferencePotential::default();
        assert_eq!(pot.energy(&[]).total, 0.0);
        let e1 = pot.energy(&[[0.0, 0.0, 0.0]]);
        assert_eq!(e1.total, 0.0, "isolated atom has zero energy");
        assert_eq!(e1.per_atom, vec![0.0]);
    }

    #[test]
    fn per_atom_decomposition_sums_to_total() {
        let pot = ReferencePotential::default();
        let mut rng = Rng::new(71);
        let pos = random_cluster(12, 1.0, 1.3, &mut rng);
        let e = pot.energy(&pos);
        let sum: f64 = e.per_atom.iter().sum();
        assert!((sum - e.total).abs() < 1e-10);
    }

    #[test]
    fn dimer_energy_minimum_near_r0() {
        let pot = ReferencePotential {
            lambda: 0.0,
            elec_weight: 0.0,
            ..Default::default()
        };
        let e_at = |r: f64| pot.energy(&[[0.0; 3], [r, 0.0, 0.0]]).total;
        let mut best_r = 0.0;
        let mut best_e = f64::INFINITY;
        let mut r = 0.6;
        while r < 2.4 {
            let e = e_at(r);
            if e < best_e {
                best_e = e;
                best_r = r;
            }
            r += 0.01;
        }
        // The cutoff function shifts the Morse minimum slightly inward.
        assert!(
            (best_r - pot.r0).abs() < 0.15,
            "dimer minimum at {best_r}, expected near {}",
            pot.r0
        );
        assert!(best_e < 0.0, "bound dimer");
    }

    #[test]
    fn energy_is_translation_invariant() {
        let pot = ReferencePotential::default();
        let mut rng = Rng::new(72);
        let pos = random_cluster(8, 1.0, 1.3, &mut rng);
        let shifted: Vec<_> = pos
            .iter()
            .map(|p| [p[0] + 10.0, p[1] - 3.0, p[2] + 0.5])
            .collect();
        let e1 = pot.energy(&pos).total;
        let e2 = pot.energy(&shifted).total;
        assert!((e1 - e2).abs() < 1e-9);
    }

    #[test]
    fn energy_is_permutation_invariant() {
        let pot = ReferencePotential::default();
        let mut rng = Rng::new(73);
        let mut pos = random_cluster(7, 1.0, 1.3, &mut rng);
        let e1 = pot.energy(&pos).total;
        pos.reverse();
        pos.swap(1, 3);
        let e2 = pot.energy(&pos).total;
        assert!((e1 - e2).abs() < 1e-9);
    }

    #[test]
    fn energy_is_rotation_invariant() {
        let pot = ReferencePotential::default();
        let mut rng = Rng::new(74);
        let pos = random_cluster(6, 1.0, 1.3, &mut rng);
        // Rotate 90° about z.
        let rotated: Vec<Vec3> = pos.iter().map(|p| [-p[1], p[0], p[2]]).collect();
        let e1 = pot.energy(&pos).total;
        let e2 = pot.energy(&rotated).total;
        assert!((e1 - e2).abs() < 1e-9);
    }

    #[test]
    fn scf_converges() {
        let pot = ReferencePotential::default();
        let mut rng = Rng::new(75);
        let pos = random_cluster(15, 1.0, 1.2, &mut rng);
        let e = pot.energy(&pos);
        assert!(
            e.scf_iterations < pot.scf_max_iter,
            "SCF should converge before the iteration cap, used {}",
            e.scf_iterations
        );
        assert!(e.scf_iterations > 1, "SCF should need several iterations");
    }

    #[test]
    fn beyond_cutoff_atoms_do_not_interact() {
        let pot = ReferencePotential::default();
        let pos = vec![[0.0; 3], [pot.rc + 0.1, 0.0, 0.0]];
        assert_eq!(pot.energy(&pos).total, 0.0);
    }

    #[test]
    fn cutoff_function_properties() {
        let pot = ReferencePotential::default();
        assert!((pot.fc(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(pot.fc(pot.rc), 0.0);
        assert_eq!(pot.fc(pot.rc + 1.0), 0.0);
        // Monotone decreasing.
        assert!(pot.fc(0.5) > pot.fc(1.0));
        assert!(pot.fc(1.0) > pot.fc(2.0));
    }

    #[test]
    fn numerical_forces_are_consistent_with_energy_descent() {
        // Moving along the force direction must lower the energy.
        let pot = ReferencePotential::default();
        let mut rng = Rng::new(76);
        let pos = random_cluster(5, 1.0, 1.4, &mut rng);
        let forces = pot.forces_numerical(&pos, 1e-5);
        let e0 = pot.energy(&pos).total;
        let step = 1e-3;
        let norm: f64 = forces
            .iter()
            .flat_map(|f| f.iter())
            .map(|x| x * x)
            .sum::<f64>()
            .sqrt();
        if norm > 1e-8 {
            let moved: Vec<Vec3> = pos
                .iter()
                .zip(forces.iter())
                .map(|(p, f)| {
                    [
                        p[0] + step * f[0] / norm,
                        p[1] + step * f[1] / norm,
                        p[2] + step * f[2] / norm,
                    ]
                })
                .collect();
            let e1 = pot.energy(&moved).total;
            assert!(e1 < e0, "descent along forces must lower energy: {e0} -> {e1}");
        }
    }

    #[test]
    fn random_cluster_respects_min_separation_mostly() {
        let mut rng = Rng::new(77);
        let pos = random_cluster(20, 1.0, 1.5, &mut rng);
        assert_eq!(pos.len(), 20);
        let mut violations = 0;
        for i in 0..20 {
            for j in (i + 1)..20 {
                let d2 = (pos[i][0] - pos[j][0]).powi(2)
                    + (pos[i][1] - pos[j][1]).powi(2)
                    + (pos[i][2] - pos[j][2]).powi(2);
                if d2 < 0.49 {
                    violations += 1;
                }
            }
        }
        assert_eq!(violations, 0, "clusters should respect 0.7 r0 separation");
    }
}
