//! The nanoconfinement scenario of paper ref \[26\] (Kadupitiya, Fox,
//! Jadhao): ions between two planar walls, with the five control parameters
//! the surrogate learns —
//!
//! * `h`   — confinement length (wall separation, nm),
//! * `z_p` — positive-ion valency,
//! * `z_n` — negative-ion valency (stored as a positive magnitude),
//! * `c`   — salt concentration (mol/L),
//! * `d`   — ion diameter (nm),
//!
//! and the three learned outputs: contact, mid-plane, and peak densities of
//! the positive species. One [`NanoSim::run`] call is one "expensive HPC
//! simulation"; the MLaroundHPC machinery in `learning-everywhere` wraps it.

use le_linalg::Rng;

use crate::forces::{debye_kappa, ForceField, BJERRUM_WATER, IONS_PER_NM3_PER_MOLAR};
use crate::integrate::{run, Integrator};
use crate::sample::{extract_features_at_contact, DensityProfiler};
use crate::system::{SlabBox, Species, System};
use crate::{MdError, Result};

/// The five input features of the nanoconfinement surrogate (D = 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NanoParams {
    /// Wall separation h (nm).
    pub h: f64,
    /// Positive ion valency (1–3).
    pub z_p: u32,
    /// Negative ion valency magnitude (1–2).
    pub z_n: u32,
    /// Salt concentration (mol/L).
    pub c: f64,
    /// Ion diameter (nm).
    pub d: f64,
}

impl NanoParams {
    /// Parameter ranges matching the companion study's sweep.
    pub const H_RANGE: (f64, f64) = (2.0, 4.0);
    /// Valid salt concentrations (mol/L).
    pub const C_RANGE: (f64, f64) = (0.3, 0.9);
    /// Valid ion diameters (nm).
    pub const D_RANGE: (f64, f64) = (0.5, 0.75);

    /// Validate physical ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.5..=10.0).contains(&self.h) {
            return Err(MdError::InvalidParam(format!("h = {} nm out of range", self.h)));
        }
        if !(1..=3).contains(&self.z_p) || !(1..=3).contains(&self.z_n) {
            return Err(MdError::InvalidParam(format!(
                "valencies z_p={}, z_n={} out of range",
                self.z_p, self.z_n
            )));
        }
        if !(0.01..=5.0).contains(&self.c) {
            return Err(MdError::InvalidParam(format!("c = {} M out of range", self.c)));
        }
        if !(0.1..=1.0).contains(&self.d) {
            return Err(MdError::InvalidParam(format!("d = {} nm out of range", self.d)));
        }
        if self.d >= self.h / 2.0 {
            return Err(MdError::InvalidParam(format!(
                "ion diameter {} too large for slab height {}",
                self.d, self.h
            )));
        }
        Ok(())
    }

    /// Flatten to the D = 5 feature vector `[h, z_p, z_n, c, d]`.
    pub fn to_features(&self) -> [f64; 5] {
        [self.h, self.z_p as f64, self.z_n as f64, self.c, self.d]
    }

    /// Inverse of [`NanoParams::to_features`]; valencies are rounded.
    pub fn from_features(f: &[f64]) -> Result<Self> {
        if f.len() != 5 {
            return Err(MdError::InvalidParam(format!(
                "expected 5 features, got {}",
                f.len()
            )));
        }
        let p = Self {
            h: f[0],
            z_p: f[1].round().max(1.0) as u32,
            z_n: f[2].round().max(1.0) as u32,
            c: f[3],
            d: f[4],
        };
        p.validate()?;
        Ok(p)
    }

    /// Draw a random parameter point from the study's ranges.
    pub fn sample(rng: &mut Rng) -> Self {
        Self {
            h: rng.uniform_in(Self::H_RANGE.0, Self::H_RANGE.1),
            z_p: 1 + rng.below(3) as u32,
            z_n: 1 + rng.below(2) as u32,
            c: rng.uniform_in(Self::C_RANGE.0, Self::C_RANGE.1),
            d: rng.uniform_in(Self::D_RANGE.0, Self::D_RANGE.1),
        }
    }

    /// Deterministic full-factorial grid over the parameter ranges with the
    /// given number of levels per continuous axis. Grid size is
    /// `levels³ × 3 × 2` (three h/c/d axes, 3 z_p values, 2 z_n values) —
    /// `levels = 11` approximates the companion study's 6864-run sweep.
    pub fn grid(levels: usize) -> Vec<Self> {
        assert!(levels >= 2);
        let lin = |lo: f64, hi: f64, i: usize| lo + (hi - lo) * i as f64 / (levels - 1) as f64;
        let mut out = Vec::with_capacity(levels * levels * levels * 6);
        for ih in 0..levels {
            for zp in 1..=3u32 {
                for zn in 1..=2u32 {
                    for ic in 0..levels {
                        for id in 0..levels {
                            out.push(Self {
                                h: lin(Self::H_RANGE.0, Self::H_RANGE.1, ih),
                                z_p: zp,
                                z_n: zn,
                                c: lin(Self::C_RANGE.0, Self::C_RANGE.1, ic),
                                d: lin(Self::D_RANGE.0, Self::D_RANGE.1, id),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Simulation fidelity knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Equilibration steps (discarded).
    pub equil_steps: usize,
    /// Production steps (sampled).
    pub prod_steps: usize,
    /// Steps between density snapshots (the §III-D blocking interval).
    pub sample_interval: usize,
    /// Snapshots averaged per block.
    pub snapshots_per_block: usize,
    /// z-histogram bins.
    pub bins: usize,
    /// Integrator timestep.
    pub dt: f64,
    /// Langevin friction.
    pub gamma: f64,
    /// Temperature (kT).
    pub temperature: f64,
    /// Lateral box size (nm); sets the particle count together with `c`.
    pub lateral: f64,
}

impl SimConfig {
    /// Test-speed preset (seconds per run ≪ 1).
    pub fn fast() -> Self {
        Self {
            equil_steps: 400,
            prod_steps: 1200,
            sample_interval: 10,
            snapshots_per_block: 6,
            bins: 25,
            dt: 0.005,
            gamma: 1.0,
            temperature: 1.0,
            lateral: 3.0,
        }
    }

    /// Benchmark-fidelity preset.
    pub fn standard() -> Self {
        Self {
            equil_steps: 2_000,
            prod_steps: 10_000,
            sample_interval: 20,
            snapshots_per_block: 10,
            bins: 50,
            dt: 0.005,
            gamma: 1.0,
            temperature: 1.0,
            lateral: 3.5,
        }
    }
}

/// The learned outputs (contact / mid-plane / peak cation density, 1/nm³).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityOutputs {
    /// Cation density at wall contact.
    pub contact: f64,
    /// Cation density at the slab mid-plane.
    pub mid: f64,
    /// Peak cation density.
    pub peak: f64,
}

impl DensityOutputs {
    /// Flatten to the 3-vector the surrogate predicts.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![self.contact, self.mid, self.peak]
    }

    /// Rebuild from a model output vector.
    pub fn from_slice(v: &[f64]) -> Self {
        assert!(v.len() >= 3);
        Self {
            contact: v[0],
            mid: v[1],
            peak: v[2],
        }
    }
}

/// Extra diagnostics from one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock seconds for the full run.
    pub wall_seconds: f64,
    /// Particle count simulated.
    pub n_particles: usize,
    /// Full cation density profile.
    pub profile: Vec<f64>,
    /// Standard error per profile bin.
    pub profile_se: Vec<f64>,
    /// Mean temperature over production (thermostat check).
    pub mean_temperature: f64,
}

/// The nanoconfinement simulator.
#[derive(Debug, Clone)]
pub struct NanoSim {
    config: SimConfig,
}

impl NanoSim {
    /// New simulator with the given fidelity.
    pub fn new(config: SimConfig) -> Self {
        Self { config }
    }

    /// The fidelity configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of ions that `params` implies at this fidelity.
    pub fn ion_counts(&self, params: &NanoParams) -> (usize, usize) {
        let volume = self.config.lateral * self.config.lateral * params.h;
        let n_units = (params.c * IONS_PER_NM3_PER_MOLAR * volume).round().max(1.0) as usize;
        // Electroneutral z_p:z_n salt — n_units formula units give
        // n_units*z_n cations and n_units*z_p anions.
        (n_units * params.z_n as usize, n_units * params.z_p as usize)
    }

    /// Run one full simulation: build, equilibrate, produce, extract
    /// densities.
    pub fn run(&self, params: &NanoParams, seed: u64) -> Result<(DensityOutputs, RunStats)> {
        params.validate()?;
        // Wall-clock for the report only; never feeds the dynamics. The
        // timed span also lands the run in the OBS snapshot.
        let sp = le_obs::timed_span!("mdsim.nanosim_run");
        let cfg = &self.config;
        let bbox = SlabBox::new(cfg.lateral, cfg.lateral, params.h)?;
        let mut sys = System::new(bbox);
        let mut rng = Rng::new(seed);
        let (n_p, n_n) = self.ion_counts(params);
        sys.insert_species(
            Species {
                valency: params.z_p as i32,
                diameter: params.d,
                mass: 1.0,
            },
            n_p,
            cfg.temperature,
            &mut rng,
        )?;
        sys.insert_species(
            Species {
                valency: -(params.z_n as i32),
                diameter: params.d,
                mass: 1.0,
            },
            n_n,
            cfg.temperature,
            &mut rng,
        )?;
        sys.zero_momentum();
        debug_assert!(sys.net_charge().abs() < 1e-9);

        let ff = ForceField {
            kappa: debye_kappa(params.c, params.z_p, params.z_n, BJERRUM_WATER),
            wall_sigma: 0.5 * params.d,
            ..Default::default()
        };
        let integ = Integrator {
            dt: cfg.dt,
            gamma: cfg.gamma,
            temperature: cfg.temperature,
            ..Default::default()
        };
        // Equilibration: tighter thermostat plus a speed limit so that
        // residual insertion overlaps relax instead of detonating
        // (max displacement ≈ 0.02 nm per step).
        let eq_dt = cfg.dt * 0.5;
        let eq_integ = Integrator {
            gamma: 5.0,
            dt: eq_dt,
            max_speed: 0.02 / eq_dt,
            max_ke_per_particle: f64::INFINITY,
            ..integ
        };
        run(
            &mut sys,
            &ff,
            &eq_integ,
            cfg.equil_steps,
            cfg.equil_steps.max(1),
            &mut rng,
            |_, _| {},
        )?;
        // Production with density sampling.
        let area = cfg.lateral * cfg.lateral;
        let mut profiler =
            DensityProfiler::new(cfg.bins, params.h, area, 1, cfg.snapshots_per_block);
        let traj = run(
            &mut sys,
            &ff,
            &integ,
            cfg.prod_steps,
            cfg.sample_interval,
            &mut rng,
            |_, s| profiler.record(s),
        )?;
        let profile = profiler.profile();
        let profile_se = profiler.standard_error();
        // The contact plane sits at the wall potential's onset (the 9-3
        // minimum, 0.858 σ_wall from the wall), where ions can actually
        // reach — inside that the profile is empty by construction.
        let z_contact = 0.858_374_2 * ff.wall_sigma;
        let features = extract_features_at_contact(&profile, params.h, z_contact);
        let mean_temperature = if traj.temperature.is_empty() {
            0.0
        } else {
            traj.temperature.iter().sum::<f64>() / traj.temperature.len() as f64
        };
        let outputs = DensityOutputs {
            contact: features.contact,
            mid: features.mid,
            peak: features.peak,
        };
        let stats = RunStats {
            wall_seconds: sp.finish_secs(),
            n_particles: sys.len(),
            profile,
            profile_se,
            mean_temperature,
        };
        Ok((outputs, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid_params() -> NanoParams {
        NanoParams {
            h: 3.0,
            z_p: 1,
            z_n: 1,
            c: 0.5,
            d: 0.6,
        }
    }

    #[test]
    fn params_validation() {
        assert!(mid_params().validate().is_ok());
        assert!(NanoParams { h: 0.1, ..mid_params() }.validate().is_err());
        assert!(NanoParams { z_p: 5, ..mid_params() }.validate().is_err());
        assert!(NanoParams { c: 0.0, ..mid_params() }.validate().is_err());
        assert!(NanoParams { d: 2.0, ..mid_params() }.validate().is_err());
        // Diameter vs slab height coupling.
        assert!(NanoParams { h: 1.0, d: 0.6, ..mid_params() }.validate().is_err());
    }

    #[test]
    fn features_roundtrip() {
        let p = mid_params();
        let f = p.to_features();
        assert_eq!(f, [3.0, 1.0, 1.0, 0.5, 0.6]);
        let back = NanoParams::from_features(&f).unwrap();
        assert_eq!(back, p);
        assert!(NanoParams::from_features(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn grid_size_and_validity() {
        let grid = NanoParams::grid(3);
        assert_eq!(grid.len(), 3 * 3 * 3 * 3 * 2);
        assert!(grid.iter().all(|p| p.validate().is_ok()));
        // levels=11 approximates the companion study's 6864-run sweep:
        // 11³·6 = 7986.
        assert_eq!(NanoParams::grid(11).len(), 7986);
    }

    #[test]
    fn sampled_params_are_valid() {
        let mut rng = Rng::new(61);
        for _ in 0..100 {
            assert!(NanoParams::sample(&mut rng).validate().is_ok());
        }
    }

    #[test]
    fn ion_counts_electroneutral_and_scale_with_c() {
        let sim = NanoSim::new(SimConfig::fast());
        let p1 = NanoParams { c: 0.3, ..mid_params() };
        let p2 = NanoParams { c: 0.9, ..mid_params() };
        let (np1, nn1) = sim.ion_counts(&p1);
        let (np2, nn2) = sim.ion_counts(&p2);
        assert!(np2 > np1, "more salt, more ions");
        // 1:1 salt: equal counts.
        assert_eq!(np1, nn1);
        assert_eq!(np2, nn2);
        // 2:1 salt: twice as many anions as cations.
        let p3 = NanoParams { z_p: 2, ..mid_params() };
        let (np3, nn3) = sim.ion_counts(&p3);
        assert_eq!(nn3, 2 * np3);
    }

    #[test]
    fn run_produces_physical_densities() {
        let sim = NanoSim::new(SimConfig::fast());
        let (out, stats) = sim.run(&mid_params(), 7).unwrap();
        assert!(out.contact >= 0.0 && out.mid >= 0.0);
        assert!(out.peak >= out.mid, "peak is a maximum");
        assert!(out.peak >= out.contact * 0.999);
        assert!(out.peak > 0.0, "some cations must exist");
        assert!(stats.n_particles > 0);
        assert!(stats.wall_seconds > 0.0);
        // Thermostat held.
        assert!(
            (stats.mean_temperature - 1.0).abs() < 0.25,
            "T = {}",
            stats.mean_temperature
        );
        // Profile integrates to the cation count.
        let bin_w = mid_params().h / stats.profile.len() as f64;
        let area = sim.config().lateral * sim.config().lateral;
        let total: f64 = stats.profile.iter().map(|&d| d * area * bin_w).sum();
        let (n_p, _) = sim.ion_counts(&mid_params());
        assert!(
            (total - n_p as f64).abs() < 0.15 * n_p as f64,
            "profile integral {total} vs {n_p} cations"
        );
    }

    #[test]
    fn run_is_deterministic_given_seed() {
        let sim = NanoSim::new(SimConfig::fast());
        let (a, _) = sim.run(&mid_params(), 99).unwrap();
        let (b, _) = sim.run(&mid_params(), 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_close_but_not_identical_outputs() {
        let sim = NanoSim::new(SimConfig::fast());
        let (a, _) = sim.run(&mid_params(), 1).unwrap();
        let (b, _) = sim.run(&mid_params(), 2).unwrap();
        assert_ne!(a, b, "different noise realizations");
        // But the physics is the same: outputs within a factor ~2.
        assert!(a.peak > 0.3 * b.peak && a.peak < 3.0 * b.peak);
    }

    #[test]
    fn higher_concentration_gives_higher_density() {
        let sim = NanoSim::new(SimConfig::fast());
        let lo = NanoParams { c: 0.3, ..mid_params() };
        let hi = NanoParams { c: 0.9, ..mid_params() };
        let (out_lo, _) = sim.run(&lo, 11).unwrap();
        let (out_hi, _) = sim.run(&hi, 11).unwrap();
        assert!(
            out_hi.peak > out_lo.peak,
            "3x salt should raise peak density: {} vs {}",
            out_hi.peak,
            out_lo.peak
        );
    }

    #[test]
    fn invalid_params_rejected_by_run() {
        let sim = NanoSim::new(SimConfig::fast());
        let bad = NanoParams { h: 0.2, ..mid_params() };
        assert!(sim.run(&bad, 1).is_err());
    }
}
