//! Time integration: velocity-Verlet (NVE) and Langevin dynamics via the
//! BAOAB splitting (Leimkuhler & Matthews), which samples the canonical
//! ensemble accurately even at fairly large timesteps — exactly the
//! stability-vs-timestep trade-off the MLautotuning experiment (E3) probes.

use le_linalg::Rng;

use crate::celllist::CellList;
use crate::forces::{compute_forces_with, ForceField, ForceScratch};
use crate::system::System;
use crate::{MdError, Result};

/// Integrator configuration.
#[derive(Debug, Clone, Copy)]
pub struct Integrator {
    /// Timestep (reduced time units).
    pub dt: f64,
    /// Langevin friction γ (1/time); 0 gives pure NVE velocity-Verlet.
    pub gamma: f64,
    /// Target temperature (kT).
    pub temperature: f64,
    /// Rebuild the cell list every this many steps.
    pub cell_rebuild_interval: usize,
    /// Abort if |KE per particle| exceeds this bound (instability guard).
    pub max_ke_per_particle: f64,
    /// Speed limit (length/time): velocities are clamped to this magnitude
    /// after every kick. 0 disables. Used during equilibration to relax
    /// insertion overlaps without the LJ core catapulting particles
    /// (the `nve/limit` idiom).
    pub max_speed: f64,
}

impl Default for Integrator {
    fn default() -> Self {
        Self {
            dt: 0.005,
            gamma: 1.0,
            temperature: 1.0,
            cell_rebuild_interval: 10,
            max_ke_per_particle: 1e4,
            max_speed: 0.0,
        }
    }
}

/// Rolling observables produced by [`run`].
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    /// Potential energy at each sample step.
    pub potential: Vec<f64>,
    /// Kinetic energy at each sample step.
    pub kinetic: Vec<f64>,
    /// Instantaneous temperature at each sample step.
    pub temperature: Vec<f64>,
}

impl Trajectory {
    /// Total energy series (potential + kinetic).
    pub fn total_energy(&self) -> Vec<f64> {
        self.potential
            .iter()
            .zip(self.kinetic.iter())
            .map(|(&p, &k)| p + k)
            .collect()
    }
}

/// Advance `sys` by `n_steps`, sampling energies every `sample_interval`
/// steps and invoking `on_sample(step, &sys)` at each sample point (the
/// density profiler hooks in here). Returns the recorded trajectory.
///
/// Errors with [`MdError::Unstable`] if energies diverge or positions go
/// non-finite — the signal the autotuner uses to find the maximum stable
/// timestep.
pub fn run(
    sys: &mut System,
    ff: &ForceField,
    integ: &Integrator,
    n_steps: usize,
    sample_interval: usize,
    rng: &mut Rng,
    mut on_sample: impl FnMut(usize, &System),
) -> Result<Trajectory> {
    if integ.dt <= 0.0 {
        return Err(MdError::InvalidParam(format!("dt must be > 0, got {}", integ.dt)));
    }
    if sys.is_empty() {
        return Err(MdError::InvalidParam("empty system".into()));
    }
    let sample_interval = sample_interval.max(1);
    let max_diameter = sys
        .diameter
        .iter()
        .fold(0.0f64, |m, &d| m.max(d));
    let cutoff = ff.max_cutoff(max_diameter);
    // Cell bins must cover the cutoff plus particle drift between rebuilds;
    // pad by 15%.
    let bin = cutoff * 1.15;
    let mut cells = CellList::build(sys.bbox, bin, &sys.pos);
    // Force scratch lives for the whole trajectory: the per-step force
    // call reuses its accumulation buffers instead of allocating.
    let mut scratch = ForceScratch::new();
    // Initial forces; the per-step recompute below refreshes the potential.
    let _ = compute_forces_with(sys, ff, &cells, &mut scratch);
    let mut potential;
    let mut traj = Trajectory::default();

    // OU coefficients for the O-step of BAOAB.
    let c1 = (-integ.gamma * integ.dt).exp();
    let half_dt = 0.5 * integ.dt;
    let clamp_speed = |vel: &mut [crate::system::Vec3]| {
        if integ.max_speed <= 0.0 {
            return;
        }
        let vmax2 = integ.max_speed * integ.max_speed;
        for v in vel.iter_mut() {
            let v2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
            if v2 > vmax2 {
                let scale = integ.max_speed / v2.sqrt();
                for vk in v.iter_mut() {
                    *vk *= scale;
                }
            }
        }
    };

    for step in 0..n_steps {
        let _step_sp = le_obs::span!("mdsim.step");
        // One causal trace span per step: pool tasks dispatched by the
        // force kernel below inherit this span's trace_id.
        let _step_tr = le_obs::trace_span!("mdsim.step");
        {
            // B-A-O-A half of the BAOAB splitting, timed as "integrate".
            let _sp = le_obs::span!("mdsim.integrate");
            // B: half kick.
            for i in 0..sys.len() {
                let inv_m = 1.0 / sys.mass[i];
                for k in 0..3 {
                    sys.vel[i][k] += half_dt * sys.force[i][k] * inv_m;
                }
            }
            clamp_speed(&mut sys.vel);
            // A: half drift.
            for i in 0..sys.len() {
                for k in 0..3 {
                    sys.pos[i][k] += half_dt * sys.vel[i][k];
                }
            }
            // O: Ornstein-Uhlenbeck exact solve (skipped when gamma = 0 → NVE).
            if integ.gamma > 0.0 {
                for i in 0..sys.len() {
                    let c2 = ((1.0 - c1 * c1) * integ.temperature / sys.mass[i]).sqrt();
                    for k in 0..3 {
                        sys.vel[i][k] = c1 * sys.vel[i][k] + c2 * rng.gaussian();
                    }
                }
            }
            // A: half drift.
            for i in 0..sys.len() {
                for k in 0..3 {
                    sys.pos[i][k] += half_dt * sys.vel[i][k];
                }
                let mut r = sys.pos[i];
                sys.bbox.wrap(&mut r);
                sys.pos[i] = r;
            }
        }
        // Force refresh (cell list rebuilt periodically).
        if step % integ.cell_rebuild_interval == 0 {
            let _sp = le_obs::span!("mdsim.celllist");
            cells = CellList::build(sys.bbox, bin, &sys.pos);
        }
        {
            let _sp = le_obs::span!("mdsim.force");
            potential = compute_forces_with(sys, ff, &cells, &mut scratch);
        }
        {
            // Final B half-kick belongs to the integrate budget too.
            let _sp = le_obs::span!("mdsim.integrate");
            for i in 0..sys.len() {
                let inv_m = 1.0 / sys.mass[i];
                for k in 0..3 {
                    sys.vel[i][k] += half_dt * sys.force[i][k] * inv_m;
                }
            }
            clamp_speed(&mut sys.vel);
        }

        // Stability guard.
        let ke = sys.kinetic_energy();
        if !ke.is_finite() || ke / sys.len() as f64 > integ.max_ke_per_particle {
            return Err(MdError::Unstable {
                step,
                reason: format!("kinetic energy per particle = {}", ke / sys.len() as f64),
            });
        }
        if step % 100 == 0 {
            if let Err(i) = sys.validate_finite() {
                return Err(MdError::Unstable {
                    step,
                    reason: format!("non-finite state at particle {i}"),
                });
            }
        }

        if step % sample_interval == 0 {
            traj.potential.push(potential);
            traj.kinetic.push(ke);
            traj.temperature.push(sys.temperature());
            on_sample(step, sys);
        }
    }
    Ok(traj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::debye_kappa;
    use crate::system::{SlabBox, Species, System};
    use le_linalg::stats;

    fn small_system(seed: u64, n_each: usize) -> (System, ForceField) {
        let bbox = SlabBox::new(4.0, 4.0, 3.0).unwrap();
        let mut sys = System::new(bbox);
        let mut rng = Rng::new(seed);
        let cation = Species {
            valency: 1,
            diameter: 0.3,
            mass: 1.0,
        };
        let anion = Species {
            valency: -1,
            diameter: 0.3,
            mass: 1.0,
        };
        sys.insert_species(cation, n_each, 1.0, &mut rng).unwrap();
        sys.insert_species(anion, n_each, 1.0, &mut rng).unwrap();
        sys.zero_momentum();
        let ff = ForceField {
            kappa: debye_kappa(0.3, 1, 1, crate::forces::BJERRUM_WATER),
            ..Default::default()
        };
        (sys, ff)
    }

    #[test]
    fn nve_conserves_energy() {
        let (mut sys, ff) = small_system(31, 20);
        // Equilibrate briefly with thermostat first to remove overlaps.
        let mut rng = Rng::new(32);
        let eq = Integrator {
            dt: 0.002,
            gamma: 5.0,
            ..Default::default()
        };
        run(&mut sys, &ff, &eq, 500, 100, &mut rng, |_, _| {}).unwrap();
        // NVE run: total energy drift must be small.
        let nve = Integrator {
            dt: 0.001,
            gamma: 0.0,
            ..Default::default()
        };
        let traj = run(&mut sys, &ff, &nve, 2000, 10, &mut rng, |_, _| {}).unwrap();
        let e = traj.total_energy();
        let e0 = e[1]; // skip the very first sample
        let max_drift = e
            .iter()
            .skip(1)
            .fold(0.0f64, |m, &x| m.max((x - e0).abs()));
        let scale = e0.abs().max(sys.len() as f64);
        assert!(
            max_drift / scale < 0.02,
            "NVE drift {max_drift} vs scale {scale}"
        );
    }

    #[test]
    fn langevin_thermostats_to_target() {
        let (mut sys, ff) = small_system(33, 30);
        let mut rng = Rng::new(34);
        let integ = Integrator {
            dt: 0.005,
            gamma: 2.0,
            temperature: 1.0,
            ..Default::default()
        };
        // Equilibrate, then measure.
        run(&mut sys, &ff, &integ, 1000, 100, &mut rng, |_, _| {}).unwrap();
        let traj = run(&mut sys, &ff, &integ, 4000, 20, &mut rng, |_, _| {}).unwrap();
        let t_mean = stats::mean(&traj.temperature).unwrap();
        assert!(
            (t_mean - 1.0).abs() < 0.12,
            "Langevin should hold T≈1.0, got {t_mean}"
        );
    }

    #[test]
    fn langevin_reaches_different_target_temperature() {
        let (mut sys, ff) = small_system(35, 30);
        let mut rng = Rng::new(36);
        let integ = Integrator {
            dt: 0.005,
            gamma: 2.0,
            temperature: 2.0,
            ..Default::default()
        };
        run(&mut sys, &ff, &integ, 1500, 100, &mut rng, |_, _| {}).unwrap();
        let traj = run(&mut sys, &ff, &integ, 4000, 20, &mut rng, |_, _| {}).unwrap();
        let t_mean = stats::mean(&traj.temperature).unwrap();
        assert!((t_mean - 2.0).abs() < 0.25, "T target 2.0, got {t_mean}");
    }

    #[test]
    fn oversized_timestep_detected_as_unstable() {
        let (mut sys, ff) = small_system(37, 30);
        let mut rng = Rng::new(38);
        let integ = Integrator {
            dt: 0.5, // absurdly large
            gamma: 1.0,
            max_ke_per_particle: 100.0,
            ..Default::default()
        };
        let result = run(&mut sys, &ff, &integ, 2000, 100, &mut rng, |_, _| {});
        assert!(
            matches!(result, Err(MdError::Unstable { .. })),
            "dt=0.5 should blow up, got {result:?}"
        );
    }

    #[test]
    fn particles_stay_in_slab() {
        let (mut sys, ff) = small_system(39, 25);
        let mut rng = Rng::new(40);
        let integ = Integrator::default();
        run(&mut sys, &ff, &integ, 2000, 100, &mut rng, |_, _| {}).unwrap();
        for (i, r) in sys.pos.iter().enumerate() {
            assert!(
                r[2] > -0.2 && r[2] < sys.bbox.h + 0.2,
                "particle {i} escaped the slab: z = {}",
                r[2]
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let (mut sys, ff) = small_system(41, 5);
        let mut rng = Rng::new(42);
        let bad_dt = Integrator {
            dt: 0.0,
            ..Default::default()
        };
        assert!(run(&mut sys, &ff, &bad_dt, 10, 1, &mut rng, |_, _| {}).is_err());
        let mut empty = System::new(sys.bbox);
        assert!(run(
            &mut empty,
            &ff,
            &Integrator::default(),
            10,
            1,
            &mut rng,
            |_, _| {}
        )
        .is_err());
    }

    #[test]
    fn sampling_callback_fires_at_interval() {
        let (mut sys, ff) = small_system(43, 10);
        let mut rng = Rng::new(44);
        let mut samples = Vec::new();
        let traj = run(
            &mut sys,
            &ff,
            &Integrator::default(),
            100,
            25,
            &mut rng,
            |step, _| samples.push(step),
        )
        .unwrap();
        assert_eq!(samples, vec![0, 25, 50, 75]);
        assert_eq!(traj.potential.len(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let run_once = || {
            let (mut sys, ff) = small_system(45, 15);
            let mut rng = Rng::new(46);
            run(
                &mut sys,
                &ff,
                &Integrator::default(),
                300,
                50,
                &mut rng,
                |_, _| {},
            )
            .unwrap();
            sys.pos[0]
        };
        assert_eq!(run_once(), run_once());
    }
}
