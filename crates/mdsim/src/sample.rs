//! Observable sampling: z-density profiles with block averaging, and the
//! contact / mid-plane / peak density extraction that the nanoconfinement
//! surrogate learns (paper ref \[26\]).
//!
//! §III-D of the paper emphasizes *blocking*: samples fed to the ML layer
//! should be separated by more than the autocorrelation time `d_c`, so each
//! is statistically independent. [`DensityProfiler`] therefore accumulates
//! per-block histograms and exposes block means/standard errors.

use crate::system::System;

/// Accumulates a z-density histogram for a chosen charge sign, in blocks.
#[derive(Debug, Clone)]
pub struct DensityProfiler {
    /// Number of z bins.
    bins: usize,
    /// Slab height.
    h: f64,
    /// Area of the x/y cross-section (for number density normalization).
    area: f64,
    /// Which particles to count: +1 counts cations, -1 anions, 0 all.
    sign: i32,
    /// Completed blocks: each is a normalized density profile.
    blocks: Vec<Vec<f64>>,
    /// Current block accumulation.
    current: Vec<f64>,
    /// Snapshots in the current block.
    current_count: usize,
    /// Snapshots per block.
    per_block: usize,
}

impl DensityProfiler {
    /// New profiler. `per_block` snapshots are averaged into each block;
    /// blocks should be longer than the observable's autocorrelation time.
    pub fn new(bins: usize, h: f64, area: f64, sign: i32, per_block: usize) -> Self {
        assert!(bins > 0 && h > 0.0 && area > 0.0);
        Self {
            bins,
            h,
            area,
            sign,
            blocks: Vec::new(),
            current: vec![0.0; bins],
            current_count: 0,
            per_block: per_block.max(1),
        }
    }

    /// Record one configuration snapshot.
    pub fn record(&mut self, sys: &System) {
        let bin_w = self.h / self.bins as f64;
        for (r, &q) in sys.pos.iter().zip(sys.charge.iter()) {
            let counted = match self.sign {
                0 => true,
                s if s > 0 => q > 0.0,
                _ => q < 0.0,
            };
            if !counted {
                continue;
            }
            let z = r[2].clamp(0.0, self.h - 1e-12);
            let b = (z / bin_w) as usize;
            self.current[b.min(self.bins - 1)] += 1.0;
        }
        self.current_count += 1;
        if self.current_count >= self.per_block {
            self.flush_block();
        }
    }

    fn flush_block(&mut self) {
        if self.current_count == 0 {
            return;
        }
        let bin_w = self.h / self.bins as f64;
        let norm = 1.0 / (self.current_count as f64 * self.area * bin_w);
        let profile: Vec<f64> = self.current.iter().map(|&c| c * norm).collect();
        self.blocks.push(profile);
        self.current.iter_mut().for_each(|c| *c = 0.0);
        self.current_count = 0;
    }

    /// Number of completed blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Mean density profile over completed blocks (number density, 1/nm³).
    /// Any partial block is flushed first.
    pub fn profile(&mut self) -> Vec<f64> {
        self.flush_block();
        if self.blocks.is_empty() {
            return vec![0.0; self.bins];
        }
        let mut mean = vec![0.0; self.bins];
        for block in &self.blocks {
            for (m, &v) in mean.iter_mut().zip(block.iter()) {
                *m += v;
            }
        }
        let n = self.blocks.len() as f64;
        mean.iter_mut().for_each(|m| *m /= n);
        mean
    }

    /// Standard error per bin across blocks (zero with < 2 blocks).
    pub fn standard_error(&mut self) -> Vec<f64> {
        self.flush_block();
        let n = self.blocks.len();
        if n < 2 {
            return vec![0.0; self.bins];
        }
        let mean = {
            let mut m = vec![0.0; self.bins];
            for block in &self.blocks {
                for (mi, &v) in m.iter_mut().zip(block.iter()) {
                    *mi += v;
                }
            }
            m.iter_mut().for_each(|mi| *mi /= n as f64);
            m
        };
        let mut se = vec![0.0; self.bins];
        for block in &self.blocks {
            for ((s, &v), &m) in se.iter_mut().zip(block.iter()).zip(mean.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        se.iter_mut()
            .for_each(|s| *s = (*s / ((n - 1) as f64 * n as f64)).sqrt());
        se
    }

    /// Bin centers (z coordinates).
    pub fn bin_centers(&self) -> Vec<f64> {
        let w = self.h / self.bins as f64;
        (0..self.bins).map(|i| (i as f64 + 0.5) * w).collect()
    }
}

/// The three learned outputs of ref [26], extracted from a density profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileFeatures {
    /// Density in the first bin adjacent to the wall (contact density),
    /// symmetrized over both walls.
    pub contact: f64,
    /// Density at the slab mid-plane.
    pub mid: f64,
    /// Maximum density anywhere in the profile.
    pub peak: f64,
}

/// Extract contact/mid/peak features from a profile.
/// The profile is symmetrized (the physical system is mirror-symmetric), so
/// contact uses the average of the first and last bins.
pub fn extract_features(profile: &[f64]) -> ProfileFeatures {
    assert!(!profile.is_empty());
    let n = profile.len();
    let contact = 0.5 * (profile[0] + profile[n - 1]);
    let mid = if n % 2 == 1 {
        profile[n / 2]
    } else {
        0.5 * (profile[n / 2 - 1] + profile[n / 2])
    };
    let peak = profile.iter().fold(0.0f64, |m, &v| m.max(v));
    ProfileFeatures { contact, mid, peak }
}

/// Extract features measuring the contact density at the *contact plane* —
/// the distance of closest approach `z_contact` from each wall — rather
/// than at the wall surface itself. With soft repulsive walls the first
/// bins inside the exclusion zone are empty, so the physically meaningful
/// contact value is the density where ions can actually touch the wall.
pub fn extract_features_at_contact(profile: &[f64], h: f64, z_contact: f64) -> ProfileFeatures {
    assert!(!profile.is_empty());
    assert!(h > 0.0 && z_contact >= 0.0 && 2.0 * z_contact < h);
    let n = profile.len();
    let bin_w = h / n as f64;
    let ic = ((z_contact / bin_w) as usize).min(n - 1);
    let contact = 0.5 * (profile[ic] + profile[n - 1 - ic]);
    let base = extract_features(profile);
    ProfileFeatures {
        contact,
        mid: base.mid,
        peak: base.peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SlabBox, Species, System};
    use le_linalg::Rng;

    fn uniform_system(n: usize, seed: u64) -> System {
        let bbox = SlabBox::new(4.0, 4.0, 2.0).unwrap();
        let mut sys = System::new(bbox);
        let mut rng = Rng::new(seed);
        sys.insert_species(
            Species {
                valency: 1,
                diameter: 0.01, // effectively point particles
                mass: 1.0,
            },
            n,
            1.0,
            &mut rng,
        )
        .unwrap();
        sys
    }

    #[test]
    fn density_normalization_integrates_to_count() {
        let sys = uniform_system(500, 51);
        let mut prof = DensityProfiler::new(20, 2.0, 16.0, 0, 1);
        prof.record(&sys);
        let profile = prof.profile();
        // Integral of density over volume = N.
        let bin_w = 2.0 / 20.0;
        let total: f64 = profile.iter().map(|&d| d * 16.0 * bin_w).sum();
        assert!((total - 500.0).abs() < 1e-9, "integral {total}");
    }

    #[test]
    fn uniform_gas_gives_flat_profile() {
        // Many snapshots of independently re-placed particles → flat.
        let bbox = SlabBox::new(4.0, 4.0, 2.0).unwrap();
        let mut prof = DensityProfiler::new(10, 2.0, 16.0, 0, 5);
        let mut rng = Rng::new(52);
        for _ in 0..200 {
            let mut sys = System::new(bbox);
            sys.insert_species(
                Species {
                    valency: 1,
                    diameter: 0.01,
                    mass: 1.0,
                },
                100,
                1.0,
                &mut rng,
            )
            .unwrap();
            prof.record(&sys);
        }
        let profile = prof.profile();
        let expected = 100.0 / (16.0 * 2.0); // N/V
        // Interior bins (margin excluded: insertion keeps a diameter margin).
        for (i, &d) in profile.iter().enumerate().skip(1).take(8) {
            assert!(
                (d - expected).abs() < 0.15 * expected,
                "bin {i}: {d} vs {expected}"
            );
        }
    }

    #[test]
    fn sign_filter_counts_only_matching_species() {
        let bbox = SlabBox::new(4.0, 4.0, 2.0).unwrap();
        let mut sys = System::new(bbox);
        let mut rng = Rng::new(53);
        sys.insert_species(
            Species {
                valency: 1,
                diameter: 0.01,
                mass: 1.0,
            },
            30,
            1.0,
            &mut rng,
        )
        .unwrap();
        sys.insert_species(
            Species {
                valency: -1,
                diameter: 0.01,
                mass: 1.0,
            },
            70,
            1.0,
            &mut rng,
        )
        .unwrap();
        let bin_w = 2.0 / 10.0;
        let count_of = |sign: i32| -> f64 {
            let mut p = DensityProfiler::new(10, 2.0, 16.0, sign, 1);
            p.record(&sys);
            p.profile().iter().map(|&d| d * 16.0 * bin_w).sum()
        };
        assert!((count_of(1) - 30.0).abs() < 1e-9);
        assert!((count_of(-1) - 70.0).abs() < 1e-9);
        assert!((count_of(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn block_averaging_counts_blocks() {
        let sys = uniform_system(10, 54);
        let mut prof = DensityProfiler::new(5, 2.0, 16.0, 0, 4);
        for _ in 0..10 {
            prof.record(&sys);
        }
        assert_eq!(prof.n_blocks(), 2, "10 snapshots / 4 per block = 2 full");
        let _ = prof.profile(); // flushes the partial block of 2
        assert_eq!(prof.n_blocks(), 3);
    }

    #[test]
    fn standard_error_zero_for_identical_blocks() {
        let sys = uniform_system(10, 55);
        let mut prof = DensityProfiler::new(5, 2.0, 16.0, 0, 1);
        for _ in 0..5 {
            prof.record(&sys); // same snapshot every time
        }
        let se = prof.standard_error();
        assert!(se.iter().all(|&s| s < 1e-12));
    }

    #[test]
    fn extract_features_odd_and_even() {
        let odd = [1.0, 2.0, 5.0, 2.0, 1.5];
        let f = extract_features(&odd);
        assert_eq!(f.contact, 1.25);
        assert_eq!(f.mid, 5.0);
        assert_eq!(f.peak, 5.0);
        let even = [3.0, 1.0, 2.0, 4.0];
        let f = extract_features(&even);
        assert_eq!(f.contact, 3.5);
        assert_eq!(f.mid, 1.5);
        assert_eq!(f.peak, 4.0);
    }

    #[test]
    fn contact_plane_extraction_skips_excluded_bins() {
        // 10 bins over h = 2: bins 0-1 are inside the exclusion zone.
        let mut profile = vec![0.0; 10];
        profile[2] = 4.0; // contact plane density (z ≈ 0.5)
        profile[7] = 6.0; // mirror side
        profile[5] = 1.0;
        let f = extract_features_at_contact(&profile, 2.0, 0.5);
        assert_eq!(f.contact, 5.0, "average of the two contact-plane bins");
        assert_eq!(f.peak, 6.0);
        // Plain extraction would read the empty wall bins instead.
        assert_eq!(extract_features(&profile).contact, 0.0);
    }

    #[test]
    fn contact_plane_zero_offset_matches_plain() {
        let profile = [2.0, 1.0, 3.0, 1.5, 2.5];
        let a = extract_features(&profile);
        let b = extract_features_at_contact(&profile, 1.0, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn bin_centers_cover_slab() {
        let prof = DensityProfiler::new(4, 2.0, 1.0, 0, 1);
        assert_eq!(prof.bin_centers(), vec![0.25, 0.75, 1.25, 1.75]);
    }
}
