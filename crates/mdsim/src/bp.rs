//! Behler–Parrinello neural-network potential (paper refs \[30\]–\[33\]).
//!
//! The key insight the paper quotes: "represent the total energy as a sum of
//! atomic contributions and represent the chemical environment around each
//! atom by an identically structured NN, which takes as input appropriate
//! symmetry functions that are rotation and translation invariant as well as
//! invariant to exchange of atoms."
//!
//! * [`SymmetryFunctions`] — radial G² and angular G⁴ descriptors with the
//!   required invariances.
//! * [`BpPotential`] — one shared per-atom MLP; total energy is the sum of
//!   per-atom outputs. Trained on the per-atom energies of
//!   [`crate::reference::ReferencePotential`] (which is exactly how DFT
//!   reference data is used, via its atomic-energy partitioning).
//! * [`generate_training_set`] — random clusters → (descriptor, per-atom
//!   energy) pairs, parallelized with Rayon.

use le_linalg::{Matrix, Rng};
use le_nn::{Mlp, MlpConfig, Scaler, TrainConfig, Trainer};
use le_pool as pool;

use crate::reference::{random_cluster, ReferencePotential};
use crate::system::Vec3;
use crate::{MdError, Result};

/// Parameters of the atom-centered symmetry-function descriptor set.
#[derive(Debug, Clone)]
pub struct SymmetryFunctions {
    /// Cutoff radius (must match the reference potential's locality).
    pub rc: f64,
    /// Gaussian widths η for the radial G² set.
    pub radial_etas: Vec<f64>,
    /// Gaussian centers r_s for the radial G² set (paired with each η).
    pub radial_shifts: Vec<f64>,
    /// ζ exponents for the angular G⁴ set.
    pub angular_zetas: Vec<f64>,
    /// λ = ±1 signs for the angular G⁴ set.
    pub angular_lambdas: Vec<f64>,
    /// η for the angular set.
    pub angular_eta: f64,
}

impl SymmetryFunctions {
    /// A standard small descriptor set (8 radial + 4 angular = 12 features).
    pub fn standard(rc: f64) -> Self {
        Self {
            rc,
            radial_etas: vec![0.5, 0.5, 1.0, 1.0, 2.0, 2.0, 4.0, 4.0],
            radial_shifts: vec![0.8, 1.2, 0.8, 1.6, 1.0, 2.0, 1.0, 1.4],
            angular_zetas: vec![1.0, 2.0, 1.0, 2.0],
            angular_lambdas: vec![1.0, 1.0, -1.0, -1.0],
            angular_eta: 0.5,
        }
    }

    /// Number of features per atom.
    pub fn n_features(&self) -> usize {
        self.radial_etas.len() + self.angular_zetas.len()
    }

    /// Smooth cosine cutoff.
    #[inline]
    fn fc(&self, r: f64) -> f64 {
        if r >= self.rc {
            0.0
        } else {
            0.5 * ((std::f64::consts::PI * r / self.rc).cos() + 1.0)
        }
    }

    /// 2^(1-ζ) prefactor with exact shortcuts for the common integer ζ.
    #[inline]
    fn zeta_prefactor(zeta: f64) -> f64 {
        if zeta == 1.0 { // lint:allow(float-hygiene): exact dispatch on a literal config value
            1.0
        } else if zeta == 2.0 { // lint:allow(float-hygiene): exact dispatch on a literal config value
            0.5
        } else {
            2.0f64.powf(1.0 - zeta)
        }
    }

    /// base^ζ with multiply shortcuts for the common integer ζ (`powf` costs
    /// an `exp`+`ln` pair; ζ ∈ {1, 2} covers every standard descriptor set).
    #[inline]
    fn zeta_pow(base: f64, zeta: f64) -> f64 {
        if zeta == 1.0 { // lint:allow(float-hygiene): exact dispatch on a literal config value
            base
        } else if zeta == 2.0 { // lint:allow(float-hygiene): exact dispatch on a literal config value
            base * base
        } else {
            base.powf(zeta)
        }
    }

    /// Descriptor vector for atom `i` in configuration `pos`.
    pub fn describe_atom(&self, pos: &[Vec3], i: usize) -> Vec<f64> {
        let mut features = vec![0.0; self.n_features()];
        // Collect neighbors of i within rc, with the cutoff value hoisted:
        // fc(r) is reused by every radial feature and every angular pair the
        // neighbor participates in, so one cosine here replaces dozens below.
        let mut nbrs: Vec<(f64, f64, Vec3)> = Vec::new();
        for (j, rj) in pos.iter().enumerate() {
            if j == i {
                continue;
            }
            let d = [
                rj[0] - pos[i][0],
                rj[1] - pos[i][1],
                rj[2] - pos[i][2],
            ];
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            if r < self.rc {
                nbrs.push((r, self.fc(r), d));
            }
        }
        // Radial G2: Σ_j exp(-η (r_ij - r_s)²) fc(r_ij).
        for (k, (&eta, &rs)) in self
            .radial_etas
            .iter()
            .zip(self.radial_shifts.iter())
            .enumerate()
        {
            features[k] = nbrs
                .iter()
                .map(|&(r, fcr, _)| (-eta * (r - rs) * (r - rs)).exp() * fcr)
                .sum();
        }
        // Angular G4: 2^(1-ζ) Σ_{j<k} (1 + λ cosθ)^ζ
        //             · exp(-η(r_ij² + r_ik² + r_jk²)) fc(r_ij) fc(r_ik) fc(r_jk).
        let off = self.radial_etas.len();
        for a in 0..nbrs.len() {
            for b in (a + 1)..nbrs.len() {
                let (rj, fcj, dj) = nbrs[a];
                let (rk, fck, dk) = nbrs[b];
                let djk = [dk[0] - dj[0], dk[1] - dj[1], dk[2] - dj[2]];
                let rjk = (djk[0] * djk[0] + djk[1] * djk[1] + djk[2] * djk[2]).sqrt();
                if rjk >= self.rc {
                    continue;
                }
                let cosang = (dj[0] * dk[0] + dj[1] * dk[1] + dj[2] * dk[2]) / (rj * rk);
                let gauss = (-self.angular_eta * (rj * rj + rk * rk + rjk * rjk)).exp();
                let cuts = fcj * fck * self.fc(rjk);
                let weight = gauss * cuts;
                for (m, (&zeta, &lambda)) in self
                    .angular_zetas
                    .iter()
                    .zip(self.angular_lambdas.iter())
                    .enumerate()
                {
                    let base = (1.0 + lambda * cosang).max(0.0);
                    features[off + m] +=
                        Self::zeta_prefactor(zeta) * Self::zeta_pow(base, zeta) * weight;
                }
            }
        }
        features
    }

    /// Descriptor matrix for every atom in the configuration. Atoms are
    /// described in parallel; rows are stitched in atom order, so the result
    /// is identical at every thread count.
    pub fn describe_all(&self, pos: &[Vec3]) -> Matrix {
        let nf = self.n_features();
        let mut m = Matrix::zeros(pos.len(), nf);
        let rows = pool::par_map_index(pos.len(), |i| self.describe_atom(pos, i));
        for (i, f) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(f);
        }
        m
    }
}

/// A labelled training set: per-atom descriptors and per-atom energies.
#[derive(Debug, Clone)]
pub struct BpDataset {
    /// One row per atom across all configurations.
    pub features: Matrix,
    /// Per-atom reference energy, one row per atom.
    pub energies: Matrix,
    /// Number of source configurations.
    pub n_configs: usize,
}

/// Generate `n_configs` random clusters of `atoms_per_config` atoms, label
/// them with the reference potential, and assemble the per-atom dataset.
/// Configurations are labelled in parallel (this is the expensive
/// "simulation campaign" that MLaroundHPC amortizes).
pub fn generate_training_set(
    sf: &SymmetryFunctions,
    reference: &ReferencePotential,
    n_configs: usize,
    atoms_per_config: usize,
    seed: u64,
) -> BpDataset {
    let rows: Vec<(Vec<f64>, f64)> = pool::par_map_index(n_configs, |cfg| {
            let mut rng = Rng::new(seed.wrapping_add(cfg as u64).wrapping_mul(0x2545_F491));
            let pos = random_cluster(atoms_per_config, reference.r0, 1.4, &mut rng);
            let e = reference.energy(&pos);
            (0..pos.len())
                .map(|i| (sf.describe_atom(&pos, i), e.per_atom[i]))
                .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let nf = sf.n_features();
    let mut features = Matrix::zeros(rows.len(), nf);
    let mut energies = Matrix::zeros(rows.len(), 1);
    for (r, (f, e)) in rows.iter().enumerate() {
        features.row_mut(r).copy_from_slice(f);
        energies.set(r, 0, *e);
    }
    BpDataset {
        features,
        energies,
        n_configs,
    }
}

/// The trained Behler–Parrinello potential: shared per-atom net + scalers.
#[derive(Debug, Clone)]
pub struct BpPotential {
    sf: SymmetryFunctions,
    net: Mlp,
    x_scaler: Scaler,
    y_scaler: Scaler,
}

impl BpPotential {
    /// Train a BP potential on a labelled dataset. `hidden` gives the
    /// hidden-layer widths of the shared atomic network.
    pub fn train(
        sf: SymmetryFunctions,
        data: &BpDataset,
        hidden: &[usize],
        train_config: TrainConfig,
        seed: u64,
    ) -> Result<Self> {
        let x_scaler = Scaler::fit(&data.features)
            .map_err(|e| MdError::Internal(e.to_string()))?;
        let y_scaler = Scaler::fit(&data.energies)
            .map_err(|e| MdError::Internal(e.to_string()))?;
        let xs = x_scaler
            .transform(&data.features)
            .map_err(|e| MdError::Internal(e.to_string()))?;
        let ys = y_scaler
            .transform(&data.energies)
            .map_err(|e| MdError::Internal(e.to_string()))?;
        let mut layers = vec![sf.n_features()];
        layers.extend_from_slice(hidden);
        layers.push(1);
        let mut rng = Rng::new(seed);
        let mut net = Mlp::new(MlpConfig::regression(&layers), &mut rng)
            .map_err(|e| MdError::Internal(e.to_string()))?;
        Trainer::new(train_config)
            .fit(&mut net, &xs, &ys)
            .map_err(|e| MdError::Internal(e.to_string()))?;
        Ok(Self {
            sf,
            net,
            x_scaler,
            y_scaler,
        })
    }

    /// Predicted total energy of a configuration: Σ_i NN(G_i).
    pub fn energy(&self, pos: &[Vec3]) -> f64 {
        if pos.is_empty() {
            return 0.0;
        }
        let feats = self.sf.describe_all(pos);
        let xs = self
            .x_scaler
            .transform(&feats)
            .expect("descriptor width fixed by construction"); // lint:allow(no-panic): descriptor width fixed at train time
        let ys = self.net.predict(&xs).expect("net width fixed"); // lint:allow(no-panic): net built for this width
        let back = self
            .y_scaler
            .inverse_transform(&ys)
            .expect("output width fixed"); // lint:allow(no-panic): output width fixed at train time
        back.as_slice().iter().sum()
    }

    /// Per-atom predicted energies.
    pub fn per_atom_energies(&self, pos: &[Vec3]) -> Vec<f64> {
        if pos.is_empty() {
            return Vec::new();
        }
        let feats = self.sf.describe_all(pos);
        let xs = self.x_scaler.transform(&feats).expect("width fixed"); // lint:allow(no-panic): widths fixed at train time
        let ys = self.net.predict(&xs).expect("width fixed"); // lint:allow(no-panic): widths fixed at train time
        let back = self.y_scaler.inverse_transform(&ys).expect("width fixed"); // lint:allow(no-panic): widths fixed at train time
        back.as_slice().to_vec()
    }

    /// The symmetry-function descriptor set.
    pub fn symmetry_functions(&self) -> &SymmetryFunctions {
        &self.sf
    }

    /// Numerical forces from the NN potential (central differences).
    /// 6N energy evaluations — but each is an MLP pass, so driving
    /// dynamics with the NN stays orders of magnitude cheaper than one
    /// reference force evaluation: this is the AIMD-at-force-field-cost
    /// usage of paper refs [32]–[33].
    pub fn forces_numerical(&self, pos: &[Vec3], eps: f64) -> Vec<Vec3> {
        let mut forces = vec![[0.0; 3]; pos.len()];
        let mut work = pos.to_vec();
        for i in 0..pos.len() {
            for k in 0..3 {
                work[i][k] = pos[i][k] + eps;
                let e_hi = self.energy(&work);
                work[i][k] = pos[i][k] - eps;
                let e_lo = self.energy(&work);
                work[i][k] = pos[i][k];
                forces[i][k] = -(e_hi - e_lo) / (2.0 * eps);
            }
        }
        forces
    }

    /// Relax a structure on the NN potential-energy surface by damped
    /// gradient descent with backtracking. Returns the relaxed positions
    /// and the NN energy trajectory.
    pub fn relax(
        &self,
        pos: &[Vec3],
        max_steps: usize,
        initial_step: f64,
    ) -> (Vec<Vec3>, Vec<f64>) {
        let mut current = pos.to_vec();
        let mut energy = self.energy(&current);
        let mut history = vec![energy];
        let mut step = initial_step;
        for _ in 0..max_steps {
            let forces = self.forces_numerical(&current, 1e-4);
            let fmax = forces
                .iter()
                .flat_map(|f| f.iter())
                .fold(0.0f64, |m, &v| m.max(v.abs()));
            if fmax < 1e-4 {
                break; // converged
            }
            // Trial move along the forces; backtrack if energy rises.
            let trial: Vec<Vec3> = current
                .iter()
                .zip(forces.iter())
                .map(|(r, f)| [r[0] + step * f[0], r[1] + step * f[1], r[2] + step * f[2]])
                .collect();
            let e_trial = self.energy(&trial);
            if e_trial < energy {
                current = trial;
                energy = e_trial;
                history.push(energy);
                step = (step * 1.2).min(10.0 * initial_step);
            } else {
                step *= 0.5;
                if step < 1e-8 {
                    break;
                }
            }
        }
        (current, history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_training() -> (SymmetryFunctions, ReferencePotential, BpPotential, BpDataset) {
        let reference = ReferencePotential::default();
        let sf = SymmetryFunctions::standard(reference.rc);
        let data = generate_training_set(&sf, &reference, 120, 8, 42);
        let pot = BpPotential::train(
            sf.clone(),
            &data,
            &[24, 24],
            TrainConfig {
                epochs: 150,
                patience: Some(30),
                ..Default::default()
            },
            7,
        )
        .unwrap();
        (sf, reference, pot, data)
    }

    #[test]
    fn descriptors_are_translation_invariant() {
        let sf = SymmetryFunctions::standard(2.5);
        let mut rng = Rng::new(81);
        let pos = random_cluster(6, 1.0, 1.3, &mut rng);
        let shifted: Vec<Vec3> = pos.iter().map(|p| [p[0] + 5.0, p[1], p[2] - 2.0]).collect();
        for i in 0..pos.len() {
            let a = sf.describe_atom(&pos, i);
            let b = sf.describe_atom(&shifted, i);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn descriptors_are_rotation_invariant() {
        let sf = SymmetryFunctions::standard(2.5);
        let mut rng = Rng::new(82);
        let pos = random_cluster(6, 1.0, 1.3, &mut rng);
        let rotated: Vec<Vec3> = pos.iter().map(|p| [p[1], -p[0], p[2]]).collect();
        for i in 0..pos.len() {
            let a = sf.describe_atom(&pos, i);
            let b = sf.describe_atom(&rotated, i);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn descriptors_are_neighbor_permutation_invariant() {
        let sf = SymmetryFunctions::standard(2.5);
        let pos: Vec<Vec3> = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.1, 0.0],
            [0.0, 0.0, 0.9],
        ];
        let a = sf.describe_atom(&pos, 0);
        // Swap two neighbors.
        let swapped: Vec<Vec3> = vec![pos[0], pos[2], pos[1], pos[3]];
        let b = sf.describe_atom(&swapped, 0);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_atom_has_zero_descriptor() {
        let sf = SymmetryFunctions::standard(2.5);
        let pos: Vec<Vec3> = vec![[0.0; 3], [10.0, 0.0, 0.0]];
        let d = sf.describe_atom(&pos, 0);
        assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn descriptor_count_matches() {
        let sf = SymmetryFunctions::standard(2.5);
        assert_eq!(sf.n_features(), 12);
        let pos: Vec<Vec3> = vec![[0.0; 3], [1.0, 0.0, 0.0]];
        assert_eq!(sf.describe_atom(&pos, 0).len(), 12);
        assert_eq!(sf.describe_all(&pos).shape(), (2, 12));
    }

    #[test]
    fn training_set_shapes() {
        let reference = ReferencePotential::default();
        let sf = SymmetryFunctions::standard(reference.rc);
        let data = generate_training_set(&sf, &reference, 10, 6, 1);
        assert_eq!(data.features.shape(), (60, 12));
        assert_eq!(data.energies.shape(), (60, 1));
        assert_eq!(data.n_configs, 10);
    }

    #[test]
    fn training_set_generation_is_deterministic() {
        let reference = ReferencePotential::default();
        let sf = SymmetryFunctions::standard(reference.rc);
        let a = generate_training_set(&sf, &reference, 6, 5, 9);
        let b = generate_training_set(&sf, &reference, 6, 5, 9);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        assert_eq!(a.energies.as_slice(), b.energies.as_slice());
    }

    #[test]
    fn bp_learns_reference_energies() {
        let (_, reference, pot, _) = quick_training();
        // Held-out configurations.
        let mut rng = Rng::new(83);
        let mut rel_errors = Vec::new();
        for _ in 0..20 {
            let pos = random_cluster(8, 1.0, 1.4, &mut rng);
            let e_ref = reference.energy(&pos).total;
            let e_nn = pot.energy(&pos);
            rel_errors.push((e_nn - e_ref).abs() / (e_ref.abs() + 1.0));
        }
        let mean_rel = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
        assert!(
            mean_rel < 0.25,
            "BP potential should roughly track the reference, rel err {mean_rel}"
        );
    }

    #[test]
    fn bp_energy_is_extensive_in_structure() {
        // Per-atom energies sum to the total.
        let (_, _, pot, _) = quick_training();
        let mut rng = Rng::new(84);
        let pos = random_cluster(7, 1.0, 1.3, &mut rng);
        let total = pot.energy(&pos);
        let per: f64 = pot.per_atom_energies(&pos).iter().sum();
        assert!((total - per).abs() < 1e-9);
    }

    #[test]
    fn bp_empty_configuration() {
        let (_, _, pot, _) = quick_training();
        assert_eq!(pot.energy(&[]), 0.0);
        assert!(pot.per_atom_energies(&[]).is_empty());
    }

    #[test]
    fn bp_forces_point_downhill_on_nn_surface() {
        let (_, _, pot, _) = quick_training();
        let mut rng = Rng::new(86);
        let pos = random_cluster(6, 1.0, 1.5, &mut rng);
        let forces = pot.forces_numerical(&pos, 1e-4);
        let e0 = pot.energy(&pos);
        let norm: f64 = forces
            .iter()
            .flat_map(|f| f.iter())
            .map(|x| x * x)
            .sum::<f64>()
            .sqrt();
        if norm > 1e-6 {
            let step = 1e-3 / norm;
            let moved: Vec<Vec3> = pos
                .iter()
                .zip(forces.iter())
                .map(|(r, f)| [r[0] + step * f[0], r[1] + step * f[1], r[2] + step * f[2]])
                .collect();
            assert!(
                pot.energy(&moved) < e0,
                "NN forces must descend the NN energy surface"
            );
        }
    }

    #[test]
    fn bp_relaxation_lowers_reference_energy_too() {
        // Relaxing on the NN surface should find structures the *reference*
        // also considers better — the operational test of a useful learned
        // PES.
        let (_, reference, pot, _) = quick_training();
        let mut rng = Rng::new(87);
        let pos = random_cluster(6, 1.0, 1.6, &mut rng);
        let e_ref_before = reference.energy(&pos).total;
        let (relaxed, history) = pot.relax(&pos, 60, 0.01);
        assert!(
            history.last().unwrap() <= history.first().unwrap(),
            "NN energy must not rise during relaxation: {history:?}"
        );
        let e_ref_after = reference.energy(&relaxed).total;
        assert!(
            e_ref_after < e_ref_before + 0.1,
            "NN-relaxed structure should not be worse under the reference: {e_ref_before} -> {e_ref_after}"
        );
    }

    #[test]
    fn bp_is_much_faster_than_reference() {
        let (_, reference, pot, _) = quick_training();
        let mut rng = Rng::new(85);
        let pos = random_cluster(12, 1.0, 1.3, &mut rng);
        // Warm up then time both. The debug-mode margin is thin, so the two
        // arms are interleaved per round (a scheduler stall lands on both)
        // and the gate is the median per-round ratio, not one mean that a
        // single load spike can sink — same scheme as the pipeline test in
        // tests/bp_potential_pipeline.rs.
        let _ = reference.energy(&pos);
        let _ = pot.energy(&pos);
        let (rounds, reps) = (5, 4);
        let mut ratios = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                let _ = reference.energy(&pos);
            }
            let t_ref = t0.elapsed().as_secs_f64() / reps as f64;
            let t1 = std::time::Instant::now();
            for _ in 0..reps {
                let _ = pot.energy(&pos);
            }
            let t_nn = t1.elapsed().as_secs_f64() / reps as f64;
            ratios.push(t_ref / t_nn);
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let median = ratios[ratios.len() / 2];
        assert!(
            median > 1.0,
            "NN should beat the reference: median reference/NN ratio {median:.2} (rounds: {ratios:?})"
        );
    }
}
